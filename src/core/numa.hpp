// txconflict — minimal NUMA topology shim (no libnuma dependency).
//
// The lock-table placement layer (stm/tl2) and the descriptor slab
// (conflict/descriptor.hpp) want their shared arrays spread across NUMA
// nodes so that remote threads spinning on a stripe's lock word or a
// descriptor's status word do not all hammer one node's memory controller.
// Linux places an anonymous page on the node of the thread that FIRST
// TOUCHES it, so placement needs no mbind/libnuma at all — just arranging
// for the right thread to fault each page in:
//
//   * per-thread state (a thread's descriptor slab slot) is naturally local:
//     the claiming thread performs the first write;
//   * shared tables (TL2 stripe arrays) are constructed through
//     first_touch_interleaved(), which partitions the construction into
//     chunks and round-robins them across node-pinned toucher threads.
//
// Topology comes from /sys/devices/system/node (node ids that are online
// and their cpulists); everything degrades gracefully: on a single-node
// machine, a non-Linux build, or when /sys is unreadable, node_count() is 1
// and first_touch_interleaved() runs inline on the calling thread — zero
// extra threads, zero behavior change.  current_node() is a raw getcpu(2),
// cheap enough for one-time decisions (slab selection) but not meant for
// per-operation calls.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace txc::core::numa {

namespace detail {

/// Parse a kernel cpulist/nodelist string ("0-3,8-11\n") into ids.  Returns
/// empty on any malformed input — callers treat empty as "unavailable".
inline std::vector<int> parse_id_list(const char* text) {
  std::vector<int> ids;
  const char* cursor = text;
  while (*cursor != '\0' && *cursor != '\n') {
    char* end = nullptr;
    const long first = std::strtol(cursor, &end, 10);
    if (end == cursor || first < 0) return {};
    long last = first;
    cursor = end;
    if (*cursor == '-') {
      last = std::strtol(cursor + 1, &end, 10);
      if (end == cursor + 1 || last < first) return {};
      cursor = end;
    }
    for (long id = first; id <= last; ++id) ids.push_back(static_cast<int>(id));
    if (*cursor == ',') ++cursor;
  }
  return ids;
}

/// Read one small /sys list file; empty vector when unreadable.
inline std::vector<int> read_id_list(const char* path) {
  std::FILE* file = std::fopen(path, "re");
  if (file == nullptr) return {};
  char buffer[4096];
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  buffer[read] = '\0';
  return parse_id_list(buffer);
}

}  // namespace detail

/// Online NUMA node ids, probed once.  Never empty: degrades to {0} when
/// the topology is unreadable (non-Linux, hardened /sys, single node).
inline const std::vector<int>& online_nodes() {
  static const std::vector<int> nodes = [] {
    std::vector<int> probed =
        detail::read_id_list("/sys/devices/system/node/online");
    if (probed.empty()) probed.push_back(0);
    return probed;
  }();
  return nodes;
}

[[nodiscard]] inline std::size_t node_count() {
  return online_nodes().size();
}

/// NUMA node of the CPU the calling thread is on right now (getcpu(2));
/// 0 wherever the syscall is unavailable.  Advisory: the scheduler may move
/// the thread the instant after — callers use it for one-time placement
/// decisions, not invariants.
[[nodiscard]] inline std::size_t current_node() noexcept {
#if defined(__linux__) && defined(SYS_getcpu)
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) == 0) {
    return static_cast<std::size_t>(node);
  }
#endif
  return 0;
}

/// Best-effort: restrict the calling thread to `node`'s CPUs so its page
/// faults first-touch onto that node.  False when the cpulist is unreadable
/// or the affinity call fails (the caller proceeds unpinned — placement
/// becomes approximate, never incorrect).
inline bool pin_current_thread_to_node(int node) noexcept {
#if defined(__linux__)
  char path[96];
  std::snprintf(path, sizeof(path),
                "/sys/devices/system/node/node%d/cpulist", node);
  const std::vector<int> cpus = detail::read_id_list(path);
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

/// Run `init_chunk(c)` for every chunk in [0, chunks), interleaved across
/// NUMA nodes: chunk c is executed by a thread pinned to node c % N, so the
/// pages c's writes fault in land on that node (first-touch interleave).
/// `init_chunk` must be safe to call concurrently for DISJOINT chunks.
/// Single-node (or a degenerate chunk count) runs everything inline on the
/// calling thread: no threads spawned, deterministic order.
template <typename Fn>
void first_touch_interleaved(std::size_t chunks, Fn&& init_chunk) {
  const std::vector<int>& nodes = online_nodes();
  if (nodes.size() <= 1 || chunks < nodes.size()) {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) init_chunk(chunk);
    return;
  }
  std::vector<std::thread> touchers;
  touchers.reserve(nodes.size());
  for (std::size_t index = 0; index < nodes.size(); ++index) {
    touchers.emplace_back([&, index] {
      (void)pin_current_thread_to_node(nodes[index]);  // best effort
      for (std::size_t chunk = index; chunk < chunks;
           chunk += nodes.size()) {
        init_chunk(chunk);
      }
    });
  }
  for (std::thread& toucher : touchers) toucher.join();
}

}  // namespace txc::core::numa
