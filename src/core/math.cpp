#include "core/math.hpp"

#include <cassert>

namespace txc::core {

double growth_ratio(int chain_length) noexcept {
  assert(chain_length >= 2);
  const double k = chain_length;
  return std::exp((k - 1.0) * std::log(k / (k - 1.0)));
}

double growth_ratio_slope_at_two() noexcept { return kLn4Minus1; }

double exp_inv(int chain_length) noexcept {
  assert(chain_length >= 2);
  return std::exp(1.0 / (static_cast<double>(chain_length) - 1.0));
}

double integrate(const std::function<double(double)>& f, double lo, double hi,
                 int panels) {
  if (hi <= lo) return 0.0;
  if (panels % 2 != 0) ++panels;
  const double h = (hi - lo) / panels;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < panels; ++i) {
    const double x = lo + h * i;
    sum += f(x) * (i % 2 == 0 ? 2.0 : 4.0);
  }
  return sum * h / 3.0;
}

double invert_monotone(const std::function<double(double)>& cdf, double target,
                       double lo, double hi, int iterations) {
  double a = lo;
  double b = hi;
  for (int i = 0; i < iterations && b - a > 0.0; ++i) {
    const double mid = 0.5 * (a + b);
    if (cdf(mid) < target) {
      a = mid;
    } else {
      b = mid;
    }
  }
  return 0.5 * (a + b);
}

}  // namespace txc::core
