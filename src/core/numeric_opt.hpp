// txconflict — numeric solver for the transactional-conflict minimax game.
//
// Independent check of the paper's Lagrangian derivations (Theorems 1-6): the
// optimal grace-period problem is a zero-sum game between the policy (a
// distribution p over grace periods x) and the adversary (a choice of the
// remaining time D), with payoff the competitive ratio Cost(p, D) / OPT(D).
// Discretizing both strategy spaces turns it into a matrix game, which this
// module solves by fictitious play with multiplicative-weights updates on the
// adversary side (Freund & Schapire: the average of the row player's best
// responses converges to a minimax strategy at rate O(sqrt(log n / T))).
//
// The solver knows nothing about ski rental, Lagrange multipliers, or the
// closed forms — only the Section-4 cost model — so agreement between its
// output and the analytic densities is a genuine cross-validation.  The unit
// tests assert agreement of both the game value (competitive ratio) and the
// distribution shape (CDF distance) for every strategy family; the
// `numeric_validation` bench prints the comparison table.
#pragma once

#include <cstdint>
#include <vector>

#include "core/densities.hpp"

namespace txc::core {

struct MinimaxConfig {
  ResolutionMode mode = ResolutionMode::kRequestorWins;
  double abort_cost = 100.0;  // B
  int chain_length = 2;       // k
  /// Policy grid: x in [0, B/(k-1)] with this many cells.
  int policy_points = 160;
  /// Adversary grid: D over the same support, plus the "never commits"
  /// outside option (the paper's piK mass at K).
  int adversary_points = 160;
  /// Fictitious-play iterations; empirically the value error decays like
  /// ~300/rounds for the default grids (see bench/numeric_validation).
  int rounds = 120000;
};

struct MinimaxSolution {
  std::vector<double> grace_grid;   // cell centers x_i
  std::vector<double> pdf;          // probability mass per cell / cell width
  std::vector<double> cdf;          // cumulative mass at cell right edges
  double game_value = 0.0;          // max_D ratio of the averaged strategy
  double cell_width = 0.0;

  /// CDF at arbitrary x by step interpolation (tests).
  [[nodiscard]] double cdf_at(double x) const noexcept;
};

/// Solve the discretized game.  Deterministic (no RNG: fictitious play with
/// deterministic tie-breaking toward the smaller grace period).
[[nodiscard]] MinimaxSolution solve_minimax(const MinimaxConfig& config);

/// Worst-case competitive ratio over the adversary grid for an arbitrary
/// discrete policy (mass per cell) — used to score closed forms on the same
/// grid the solver optimized over.
[[nodiscard]] double grid_worst_ratio(const MinimaxConfig& config,
                                      const std::vector<double>& mass);

/// Project a closed-form density onto the solver's grid (mass per cell).
template <typename Density>
[[nodiscard]] std::vector<double> discretize(const Density& density,
                                             const MinimaxConfig& config) {
  const double support =
      config.abort_cost / (config.chain_length - 1.0);
  const double width = support / config.policy_points;
  std::vector<double> mass(static_cast<std::size_t>(config.policy_points));
  for (int i = 0; i < config.policy_points; ++i) {
    const double left = width * i;
    const double right = width * (i + 1);
    mass[static_cast<std::size_t>(i)] =
        density.cdf(right) - density.cdf(left);
  }
  // The closed form may live on [0, B] at k = 2 (LogMeanWins) — any residual
  // tail mass lands in the last cell so totals stay 1.
  double total = 0.0;
  for (const double m : mass) total += m;
  if (total < 1.0) mass.back() += 1.0 - total;
  return mass;
}

}  // namespace txc::core
