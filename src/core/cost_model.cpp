#include "core/cost_model.hpp"

#include <algorithm>
#include <cassert>

#include "core/math.hpp"

namespace txc::core {

double conflict_cost(ResolutionMode mode, double grace, double remaining,
                     int chain_length, double abort_cost) noexcept {
  const double k = chain_length;
  // Section 4.2: "if x = D, T1 is not able to commit and thus it aborts" —
  // commit requires strictly more grace than the remaining time.  This is
  // what makes Theorem 4's adversary (D pinned exactly at DET's abort point)
  // extract the full k x + B cost.
  if (remaining < grace) {
    // Receiver commits during the grace period: every other chain member was
    // delayed by the receiver's remaining time.
    return (k - 1.0) * remaining;
  }
  if (mode == ResolutionMode::kRequestorWins) {
    // Receiver aborts after running grace extra steps: it wasted grace (its
    // work is discarded), the k-1 requestors each waited grace, and the abort
    // itself costs B.
    return k * grace + abort_cost;
  }
  // Requestor aborts: the k-1 requestors each waited grace and then abort.
  return (k - 1.0) * (grace + abort_cost);
}

double offline_optimal_cost(ResolutionMode mode, double remaining,
                            int chain_length, double abort_cost) noexcept {
  const double k = chain_length;
  if (mode == ResolutionMode::kRequestorWins) {
    return std::min((k - 1.0) * remaining, abort_cost);
  }
  return (k - 1.0) * std::min(remaining, abort_cost);
}

double expected_conflict_cost(ResolutionMode mode, const DensityView& density,
                              double remaining, int chain_length,
                              double abort_cost) {
  assert(remaining >= 0.0);
  const double k = chain_length;
  const double cut = std::min(remaining, density.support_max);
  const double abort_mass = integrate(
      [&](double x) {
        const double cost = mode == ResolutionMode::kRequestorWins
                                ? k * x + abort_cost
                                : (k - 1.0) * (x + abort_cost);
        return cost * density.pdf(x);
      },
      0.0, cut);
  const double commit_probability = 1.0 - density.cdf(cut);
  return abort_mass + (k - 1.0) * remaining * commit_probability;
}

double pointwise_ratio(ResolutionMode mode, const DensityView& density,
                       double remaining, int chain_length, double abort_cost) {
  const double optimal =
      offline_optimal_cost(mode, remaining, chain_length, abort_cost);
  assert(optimal > 0.0);
  return expected_conflict_cost(mode, density, remaining, chain_length,
                                abort_cost) /
         optimal;
}

double worst_case_ratio(ResolutionMode mode, const DensityView& density,
                        int chain_length, double abort_cost, int grid_points) {
  double worst = 0.0;
  const double limit = 2.0 * density.support_max;
  for (int i = 1; i <= grid_points; ++i) {
    const double remaining =
        limit * static_cast<double>(i) / static_cast<double>(grid_points);
    worst = std::max(worst, pointwise_ratio(mode, density, remaining,
                                            chain_length, abort_cost));
  }
  // The "never commits" adversary: any D beyond the support gives the same
  // expected cost; OPT is the immediate abort.
  worst = std::max(worst,
                   pointwise_ratio(mode, density, 100.0 * density.support_max,
                                   chain_length, abort_cost));
  return worst;
}

}  // namespace txc::core
