#include "core/densities.hpp"

#include <algorithm>
#include <cassert>

namespace txc::core {

namespace {

double clamp01(double u) noexcept { return std::clamp(u, 0.0, 1.0); }

}  // namespace

// ---------------------------------------------------------------------------
// UniformWinsDensity
// ---------------------------------------------------------------------------

UniformWinsDensity::UniformWinsDensity(double abort_cost, int chain_length)
    : abort_cost_(abort_cost),
      chain_length_(chain_length),
      support_(abort_cost / (chain_length - 1.0)) {
  assert(abort_cost > 0.0 && chain_length >= 2);
}

double UniformWinsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > support_) return 0.0;
  return (chain_length_ - 1.0) / abort_cost_;
}

double UniformWinsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= support_) return 1.0;
  return (chain_length_ - 1.0) * x / abort_cost_;
}

double UniformWinsDensity::quantile(double u) const noexcept {
  return clamp01(u) * support_;
}

// ---------------------------------------------------------------------------
// PowerWinsDensity
// ---------------------------------------------------------------------------

PowerWinsDensity::PowerWinsDensity(double abort_cost, int chain_length)
    : abort_cost_(abort_cost),
      chain_length_(chain_length),
      ratio_(growth_ratio(chain_length)),
      support_(abort_cost / (chain_length - 1.0)) {
  assert(abort_cost > 0.0 && chain_length >= 2);
}

double PowerWinsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > support_) return 0.0;
  const double k = chain_length_;
  return (k - 1.0) * std::pow(1.0 + x / abort_cost_, k - 2.0) /
         (abort_cost_ * (ratio_ - 1.0));
}

double PowerWinsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= support_) return 1.0;
  const double k = chain_length_;
  return (std::pow(1.0 + x / abort_cost_, k - 1.0) - 1.0) / (ratio_ - 1.0);
}

double PowerWinsDensity::quantile(double u) const noexcept {
  const double k = chain_length_;
  const double base = 1.0 + clamp01(u) * (ratio_ - 1.0);
  return std::min(support_,
                  abort_cost_ * (std::pow(base, 1.0 / (k - 1.0)) - 1.0));
}

// ---------------------------------------------------------------------------
// LogMeanWinsDensity
// ---------------------------------------------------------------------------

LogMeanWinsDensity::LogMeanWinsDensity(double abort_cost)
    : abort_cost_(abort_cost) {
  assert(abort_cost > 0.0);
}

double LogMeanWinsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > abort_cost_) return 0.0;
  return std::log1p(x / abort_cost_) / (abort_cost_ * kLn4Minus1);
}

double LogMeanWinsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= abort_cost_) return 1.0;
  // Integral of ln(1+t/B): (B+x) ln(1+x/B) - x.
  const double primitive =
      (abort_cost_ + x) * std::log1p(x / abort_cost_) - x;
  return primitive / (abort_cost_ * kLn4Minus1);
}

double LogMeanWinsDensity::quantile(double u) const noexcept {
  const double target = clamp01(u);
  return invert_monotone([this](double x) { return cdf(x); }, target, 0.0,
                         abort_cost_);
}

// ---------------------------------------------------------------------------
// PowerMeanWinsDensity
// ---------------------------------------------------------------------------

PowerMeanWinsDensity::PowerMeanWinsDensity(double abort_cost, int chain_length)
    : abort_cost_(abort_cost),
      chain_length_(chain_length),
      ratio_(growth_ratio(chain_length)),
      support_(abort_cost / (chain_length - 1.0)) {
  assert(abort_cost > 0.0 && chain_length >= 3 &&
         "k = 2 is the LogMeanWinsDensity limit");
}

double PowerMeanWinsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > support_) return 0.0;
  const double k = chain_length_;
  const double grown = std::pow(1.0 + x / abort_cost_, k - 2.0) - 1.0;
  return (k - 1.0) * grown / (abort_cost_ * (ratio_ - 2.0));
}

double PowerMeanWinsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= support_) return 1.0;
  const double k = chain_length_;
  const double primitive =
      abort_cost_ * (std::pow(1.0 + x / abort_cost_, k - 1.0) - 1.0) /
          (k - 1.0) -
      x;
  return (k - 1.0) * primitive / (abort_cost_ * (ratio_ - 2.0));
}

double PowerMeanWinsDensity::quantile(double u) const noexcept {
  const double target = clamp01(u);
  return invert_monotone([this](double x) { return cdf(x); }, target, 0.0,
                         support_);
}

// ---------------------------------------------------------------------------
// ExpAbortsDensity
// ---------------------------------------------------------------------------

ExpAbortsDensity::ExpAbortsDensity(double abort_cost, int chain_length)
    : abort_cost_(abort_cost),
      chain_length_(chain_length),
      q_(exp_inv(chain_length)),
      support_(abort_cost / (chain_length - 1.0)) {
  assert(abort_cost > 0.0 && chain_length >= 2);
}

double ExpAbortsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > support_) return 0.0;
  return std::exp(x / abort_cost_) / (abort_cost_ * (q_ - 1.0));
}

double ExpAbortsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= support_) return 1.0;
  return std::expm1(x / abort_cost_) / (q_ - 1.0);
}

double ExpAbortsDensity::quantile(double u) const noexcept {
  return std::min(support_,
                  abort_cost_ * std::log1p(clamp01(u) * (q_ - 1.0)));
}

// ---------------------------------------------------------------------------
// ExpMeanAbortsDensity
// ---------------------------------------------------------------------------

ExpMeanAbortsDensity::ExpMeanAbortsDensity(double abort_cost, int chain_length)
    : abort_cost_(abort_cost),
      chain_length_(chain_length),
      q_(exp_inv(chain_length)),
      denom_((chain_length - 1.0) * (q_ - 1.0) - 1.0),
      support_(abort_cost / (chain_length - 1.0)) {
  assert(abort_cost > 0.0 && chain_length >= 2);
  assert(denom_ > 0.0);
}

double ExpMeanAbortsDensity::pdf(double x) const noexcept {
  if (x < 0.0 || x > support_) return 0.0;
  const double k = chain_length_;
  return (k - 1.0) * std::expm1(x / abort_cost_) / (abort_cost_ * denom_);
}

double ExpMeanAbortsDensity::cdf(double x) const noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= support_) return 1.0;
  const double k = chain_length_;
  const double primitive = abort_cost_ * std::expm1(x / abort_cost_) - x;
  return (k - 1.0) * primitive / (abort_cost_ * denom_);
}

double ExpMeanAbortsDensity::quantile(double u) const noexcept {
  const double target = clamp01(u);
  return invert_monotone([this](double x) { return cdf(x); }, target, 0.0,
                         support_);
}

// ---------------------------------------------------------------------------
// Thresholds and ratios
// ---------------------------------------------------------------------------

double mean_threshold_wins(int chain_length) noexcept {
  assert(chain_length >= 2);
  if (chain_length == 2) return 2.0 * kLn4Minus1;
  const double r = growth_ratio(chain_length);
  const double k = chain_length;
  return 2.0 * (r - 2.0) / ((k - 2.0) * (r - 1.0));
}

double mean_threshold_aborts(int chain_length) noexcept {
  assert(chain_length >= 2);
  const double q = exp_inv(chain_length);
  const double k = chain_length;
  const double product = (k - 1.0) * (q - 1.0);
  return 2.0 * (product - 1.0) / product;
}

double ratio_det_wins(int chain_length) noexcept {
  return 2.0 + 1.0 / (static_cast<double>(chain_length) - 1.0);
}

double ratio_det_aborts(int /*chain_length*/) noexcept { return 2.0; }

double ratio_rand_wins_uniform(int /*chain_length*/) noexcept { return 2.0; }

double ratio_rand_wins_power(int chain_length) noexcept {
  const double r = growth_ratio(chain_length);
  return r / (r - 1.0);
}

double ratio_rand_wins_mean(int chain_length, double abort_cost,
                            double mean) noexcept {
  if (mean / abort_cost >= mean_threshold_wins(chain_length)) {
    return chain_length == 2 ? ratio_rand_wins_uniform(chain_length)
                             : ratio_rand_wins_power(chain_length);
  }
  if (chain_length == 2) {
    return 1.0 + mean / (2.0 * abort_cost * kLn4Minus1);
  }
  const double r = growth_ratio(chain_length);
  const double k = chain_length;
  return 1.0 + mean * (k - 2.0) / (2.0 * abort_cost * (r - 2.0));
}

double ratio_rand_aborts(int chain_length) noexcept {
  const double q = exp_inv(chain_length);
  return q / (q - 1.0);
}

double ratio_rand_aborts_mean(int chain_length, double abort_cost,
                              double mean) noexcept {
  if (mean / abort_cost >= mean_threshold_aborts(chain_length)) {
    return ratio_rand_aborts(chain_length);
  }
  const double q = exp_inv(chain_length);
  const double k = chain_length;
  return 1.0 + mean * (k - 1.0) /
                   (2.0 * abort_cost * ((k - 1.0) * (q - 1.0) - 1.0));
}

}  // namespace txc::core
