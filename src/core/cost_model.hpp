// txconflict — the Section 4 conflict cost model.
//
// One conflict: a receiver transaction T1 with unknown remaining run time D is
// interrupted by a requestor chain of total size k (T1 plus k-1 requestors).
// The policy picks a grace period x.  Costs, in added total running time:
//
//   requestor wins            requestor aborts
//   D <  x : (k-1) D          (k-1) D        (receiver commits in time)
//   D >= x : k x + B          (k-1)(x + B)   (grace expires; see Sec 4.2:
//                                             at D == x the commit is missed)
//
// Offline optimum with foresight:
//   requestor wins  : min((k-1) D, B)
//   requestor aborts: (k-1) min(D, B)
#pragma once

#include <functional>

#include "core/densities.hpp"

namespace txc::core {

/// Cost of resolving one conflict when the policy waited `grace` and the
/// receiver needed `remaining` more steps to commit.
[[nodiscard]] double conflict_cost(ResolutionMode mode, double grace,
                                   double remaining, int chain_length,
                                   double abort_cost) noexcept;

/// Offline (perfect foresight) cost of the same conflict.
[[nodiscard]] double offline_optimal_cost(ResolutionMode mode, double remaining,
                                          int chain_length,
                                          double abort_cost) noexcept;

/// Expected conflict cost of a randomized strategy with density pdf/cdf over
/// [0, support_max] for a fixed adversarial remaining time D:
///   E[cost] = Int_0^min(D,S) cost_abort(x) p(x) dx
///           + (k-1) D (1 - F(min(D,S))).
/// Computed by quadrature; used by tests and the ratio-validation bench.
struct DensityView {
  std::function<double(double)> pdf;
  std::function<double(double)> cdf;
  double support_max = 0.0;
};

template <typename Density>
[[nodiscard]] DensityView make_view(const Density& density) {
  return DensityView{
      [density](double x) { return density.pdf(x); },
      [density](double x) { return density.cdf(x); },
      density.support_max(),
  };
}

[[nodiscard]] double expected_conflict_cost(ResolutionMode mode,
                                            const DensityView& density,
                                            double remaining, int chain_length,
                                            double abort_cost);

/// Pointwise competitive ratio E[cost | D] / OPT(D).
[[nodiscard]] double pointwise_ratio(ResolutionMode mode,
                                     const DensityView& density,
                                     double remaining, int chain_length,
                                     double abort_cost);

/// Worst pointwise ratio over a grid of adversarial D values spanning
/// (0, 2 * support] plus the "never commits" point.  For the unconstrained
/// optimal densities this converges to the closed-form competitive ratio.
[[nodiscard]] double worst_case_ratio(ResolutionMode mode,
                                      const DensityView& density,
                                      int chain_length, double abort_cost,
                                      int grid_points = 400);

}  // namespace txc::core
