// txconflict — the optimal grace-period densities of Theorems 1-6.
//
// Each class is a small value type describing a probability density over the
// grace period x (the time the receiver transaction is allowed to keep running
// before the conflict is resolved against it / its requestors).  Every density
// exposes:
//   pdf(x)          the density
//   cdf(x)          its integral (exact closed forms throughout)
//   support_max()   the right end of the support (0 densities beyond it)
//   quantile(u)     inverse CDF for u in [0,1] (closed form where one exists,
//                   monotone bisection otherwise)
//   sample(rng)     one grace period draw
//
// Parameters follow the paper: B > 0 is the abort cost, k >= 2 the conflict
// chain length, mu > 0 the known mean of the adversarial length distribution.
//
// Deviations from the printed paper (documented in DESIGN.md, pinned by unit
// tests):
//  * Theorem 2's printed density does not normalize; the k = 2 case of
//    Theorem 3 does, and we use it (ExpMeanAbortsDensity).
//  * Theorem 5's statement prints ln((B+x)/x); the proof derives
//    ln((B+x)/B), which is the form that integrates to one
//    (LogMeanWinsDensity).
//  * Theorem 6's constrained density is printed with the Lagrange multiplier
//    lambda_2 too large by a factor of 4, which makes the printed p(x)
//    negative near 0.  Re-deriving with the binding constraint p(0) = 0 gives
//      p(x) = (k-1) [ (1+x/B)^(k-2) - 1 ] / (B (r-2)),  r = (k/(k-1))^(k-1),
//    which normalizes, is non-negative, and converges to the k = 2 log form
//    (PowerMeanWinsDensity).  The corresponding corner of the LP is
//    (lambda_1, lambda_2) = (1, (k-2)/(2B(r-2))) and the ratio
//    C2 = 1 + mu (k-2) / (2B (r-2)), which reduces to Theorem 5's
//    1 + mu/(2B(ln4-1)) at k = 2 (the printed C2 is < 1 at mu = 0, which is
//    impossible for a competitive ratio).
#pragma once

#include <cmath>
#include <string>

#include "core/math.hpp"
#include "sim/rng.hpp"

namespace txc::core {

/// Conflict resolution flavor (Section 1): under requestor-wins the receiver
/// of the coherence request is the transaction at risk; under requestor-aborts
/// the requestor(s) abort instead.
enum class ResolutionMode { kRequestorWins, kRequestorAborts };

[[nodiscard]] constexpr const char* to_string(ResolutionMode mode) noexcept {
  return mode == ResolutionMode::kRequestorWins ? "requestor-wins"
                                                : "requestor-aborts";
}

// ---------------------------------------------------------------------------
// Requestor wins
// ---------------------------------------------------------------------------

/// Theorem 5 (and its k > 2 note): uniform density (k-1)/B on [0, B/(k-1)].
/// 2-competitive for every k; optimal for k = 2.  This is the strategy the
/// paper highlights as trivially implementable in hardware (DELAY_RAND).
class UniformWinsDensity {
 public:
  UniformWinsDensity(double abort_cost, int chain_length);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return support_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] static std::string name() { return "uniform-wins"; }

 private:
  double abort_cost_;
  int chain_length_;
  double support_;
};

/// Theorem 6, unconstrained corner: p(x) = (k-1)(1+x/B)^(k-2) / (B(r-1)) on
/// [0, B/(k-1)], r = (k/(k-1))^(k-1).  Competitive ratio r/(r-1), which beats
/// the uniform strategy's 2 for every k >= 3 and coincides with it (ratio 2,
/// uniform density) at k = 2.
class PowerWinsDensity {
 public:
  PowerWinsDensity(double abort_cost, int chain_length);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return support_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] double competitive_ratio() const noexcept {
    return ratio_ / (ratio_ - 1.0);
  }
  [[nodiscard]] static std::string name() { return "power-wins"; }

 private:
  double abort_cost_;
  int chain_length_;
  double ratio_;  // r = (k/(k-1))^(k-1)
  double support_;
};

/// Theorem 5, mean-constrained, k = 2:
/// p(x) = ln(1 + x/B) / (B(ln4 - 1)) on [0, B].
/// Applicable when mu/B < 2(ln4 - 1); ratio 1 + mu/(2B(ln4 - 1)).
class LogMeanWinsDensity {
 public:
  explicit LogMeanWinsDensity(double abort_cost);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return abort_cost_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] static std::string name() { return "log-mean-wins"; }

 private:
  double abort_cost_;
};

/// Theorem 6, mean-constrained, k >= 3 (corrected form, see file header):
/// p(x) = (k-1) [ (1+x/B)^(k-2) - 1 ] / (B(r-2)) on [0, B/(k-1)].
/// Applicable when mu/B < 2(r-2)/((k-2)(r-1)); ratio 1 + mu(k-2)/(2B(r-2)).
class PowerMeanWinsDensity {
 public:
  PowerMeanWinsDensity(double abort_cost, int chain_length);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return support_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] static std::string name() { return "power-mean-wins"; }

 private:
  double abort_cost_;
  int chain_length_;
  double ratio_;  // r
  double support_;
};

// ---------------------------------------------------------------------------
// Requestor aborts (classic ski rental and its chain generalization)
// ---------------------------------------------------------------------------

/// Theorems 1/3, unconstrained: p(x) = e^(x/B) / (B(q-1)) on [0, B/(k-1)],
/// q = e^(1/(k-1)).  Ratio q/(q-1); e/(e-1) at k = 2 (classic ski rental).
class ExpAbortsDensity {
 public:
  ExpAbortsDensity(double abort_cost, int chain_length);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return support_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] double competitive_ratio() const noexcept {
    return q_ / (q_ - 1.0);
  }
  [[nodiscard]] static std::string name() { return "exp-aborts"; }

 private:
  double abort_cost_;
  int chain_length_;
  double q_;  // e^(1/(k-1))
  double support_;
};

/// Theorems 2/3, mean-constrained:
/// p(x) = (k-1)(e^(x/B) - 1) / (B((k-1)(q-1) - 1)) on [0, B/(k-1)].
/// Applicable when mu/B < 2((k-1)(q-1) - 1)/((k-1)(q-1));
/// ratio 1 + mu(k-1)/(2B((k-1)(q-1) - 1)).  At k = 2 this is Theorem 2:
/// p(x) = (e^(x/B) - 1)/(B(e-2)), ratio 1 + mu/(2B(e-2)),
/// threshold mu/B < 2(e-2)/(e-1).
class ExpMeanAbortsDensity {
 public:
  ExpMeanAbortsDensity(double abort_cost, int chain_length);

  [[nodiscard]] double pdf(double x) const noexcept;
  [[nodiscard]] double cdf(double x) const noexcept;
  [[nodiscard]] double quantile(double u) const noexcept;
  [[nodiscard]] double support_max() const noexcept { return support_; }
  [[nodiscard]] double sample(sim::Rng& rng) const noexcept {
    return quantile(rng.uniform01());
  }
  [[nodiscard]] static std::string name() { return "exp-mean-aborts"; }

 private:
  double abort_cost_;
  int chain_length_;
  double q_;
  double denom_;  // (k-1)(q-1) - 1
  double support_;
};

// ---------------------------------------------------------------------------
// Applicability thresholds and closed-form ratios (Sections 5.2-5.4)
// ---------------------------------------------------------------------------

/// Largest mu/B for which the mean-constrained requestor-wins density applies
/// (below it, C2 < C1).  k = 2: 2(ln4 - 1); k >= 3: 2(r-2)/((k-2)(r-1)).
[[nodiscard]] double mean_threshold_wins(int chain_length) noexcept;

/// Largest mu/B for which the mean-constrained requestor-aborts density
/// applies.  k = 2: 2(e-2)/(e-1); general: 2((k-1)(q-1)-1)/((k-1)(q-1)).
[[nodiscard]] double mean_threshold_aborts(int chain_length) noexcept;

/// Theorem 4: deterministic requestor-wins ratio 2 + 1/(k-1).
[[nodiscard]] double ratio_det_wins(int chain_length) noexcept;

/// Classic deterministic ski rental ratio (requestor aborts): 2.
[[nodiscard]] double ratio_det_aborts(int chain_length) noexcept;

/// Theorem 5 / uniform: 2 for every k.
[[nodiscard]] double ratio_rand_wins_uniform(int chain_length) noexcept;

/// Theorem 6 unconstrained corner: r/(r-1).
[[nodiscard]] double ratio_rand_wins_power(int chain_length) noexcept;

/// Mean-constrained requestor wins: 1 + mu(k-2)/(2B(r-2)), with the k = 2
/// limit 1 + mu/(2B(ln4-1)).  Returns the unconstrained ratio when the
/// threshold fails (the optimal policy falls back).
[[nodiscard]] double ratio_rand_wins_mean(int chain_length, double abort_cost,
                                          double mean) noexcept;

/// Theorems 1/3: q/(q-1).
[[nodiscard]] double ratio_rand_aborts(int chain_length) noexcept;

/// Theorems 2/3: 1 + mu(k-1)/(2B((k-1)(q-1)-1)) below the threshold, else the
/// unconstrained ratio.
[[nodiscard]] double ratio_rand_aborts_mean(int chain_length, double abort_cost,
                                            double mean) noexcept;

}  // namespace txc::core
