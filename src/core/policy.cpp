#include "core/policy.hpp"

#include <cmath>

namespace txc::core {

double RandomizedWinsPolicy::grace_period(const ConflictContext& context,
                                          sim::Rng& rng) const {
  const double B = context.abort_cost;
  const int k = context.chain_length;
  if (use_mean_hint_ && context.mean_hint.has_value()) {
    const double mu = *context.mean_hint;
    if (mu / B < mean_threshold_wins(k)) {
      if (k == 2) return LogMeanWinsDensity{B}.sample(rng);
      return PowerMeanWinsDensity{B, k}.sample(rng);
    }
  }
  if (use_power_density_) return PowerWinsDensity{B, k}.sample(rng);
  return UniformWinsDensity{B, k}.sample(rng);
}

std::string RandomizedWinsPolicy::name() const {
  if (use_mean_hint_) return use_power_density_ ? "RRW_OPT(mu)" : "RRW(mu)";
  return use_power_density_ ? "RRW_OPT" : "RRW";
}

double RandomizedAbortsPolicy::grace_period(const ConflictContext& context,
                                            sim::Rng& rng) const {
  const double B = context.abort_cost;
  const int k = context.chain_length;
  if (use_mean_hint_ && context.mean_hint.has_value()) {
    const double mu = *context.mean_hint;
    if (mu / B < mean_threshold_aborts(k)) {
      return ExpMeanAbortsDensity{B, k}.sample(rng);
    }
  }
  return ExpAbortsDensity{B, k}.sample(rng);
}

std::string RandomizedAbortsPolicy::name() const {
  return use_mean_hint_ ? "RRA(mu)" : "RRA";
}

AdaptiveTunedPolicy::AdaptiveTunedPolicy()
    : AdaptiveTunedPolicy(Params{}) {}

double AdaptiveTunedPolicy::grace_period(const ConflictContext& context,
                                         sim::Rng& rng) const {
  (void)rng;
  const double cap = params_.cap_fraction * context.abort_cost /
                     (context.chain_length - 1.0);
  const double learned =
      estimator_.mean_if_ready(params_.min_samples).value_or(
          params_.initial_delay);
  return std::min(learned, cap);
}

void AdaptiveTunedPolicy::observe(const ConflictOutcome& outcome) const noexcept {
  if (outcome.committed) {
    estimator_.add_exact(outcome.waited);
  } else {
    estimator_.add_censored(outcome.grace);
  }
}

double BackoffPolicy::grace_period(const ConflictContext& context,
                                   sim::Rng& rng) const {
  ConflictContext scaled = context;
  const double exponent =
      static_cast<double>(std::min(context.attempt, max_doublings_));
  scaled.abort_cost = context.abort_cost * std::pow(growth_, exponent);
  return inner_->grace_period(scaled, rng);
}

const char* to_string(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kNoDelay: return "NO_DELAY";
    case StrategyKind::kFixedTuned: return "DELAY_TUNED";
    case StrategyKind::kDetWins: return "DET";
    case StrategyKind::kDetAborts: return "DET_ABORTS";
    case StrategyKind::kRandWins: return "RRW";
    case StrategyKind::kRandWinsMean: return "RRW(mu)";
    case StrategyKind::kRandWinsPower: return "RRW_OPT";
    case StrategyKind::kRandAborts: return "RRA";
    case StrategyKind::kRandAbortsMean: return "RRA(mu)";
    case StrategyKind::kHybrid: return "HYBRID";
    case StrategyKind::kOracle: return "ORACLE";
    case StrategyKind::kAdaptiveTuned: return "DELAY_ADAPTIVE";
  }
  return "?";
}

std::shared_ptr<const GracePeriodPolicy> make_policy(StrategyKind kind,
                                                     double tuned_delay) {
  switch (kind) {
    case StrategyKind::kNoDelay:
      return std::make_shared<NoDelayPolicy>();
    case StrategyKind::kFixedTuned:
      return std::make_shared<FixedDelayPolicy>(tuned_delay);
    case StrategyKind::kDetWins:
      return std::make_shared<DeterministicWinsPolicy>();
    case StrategyKind::kDetAborts:
      return std::make_shared<DeterministicAbortsPolicy>();
    case StrategyKind::kRandWins:
      return std::make_shared<RandomizedWinsPolicy>(/*use_mean_hint=*/false);
    case StrategyKind::kRandWinsMean:
      return std::make_shared<RandomizedWinsPolicy>(/*use_mean_hint=*/true);
    case StrategyKind::kRandWinsPower:
      return std::make_shared<RandomizedWinsPolicy>(/*use_mean_hint=*/false,
                                                    /*use_power_density=*/true);
    case StrategyKind::kRandAborts:
      return std::make_shared<RandomizedAbortsPolicy>(/*use_mean_hint=*/false);
    case StrategyKind::kRandAbortsMean:
      return std::make_shared<RandomizedAbortsPolicy>(/*use_mean_hint=*/true);
    case StrategyKind::kHybrid:
      return std::make_shared<HybridPolicy>();
    case StrategyKind::kOracle:
      return std::make_shared<OraclePolicy>();
    case StrategyKind::kAdaptiveTuned: {
      AdaptiveTunedPolicy::Params params;
      if (tuned_delay > 0.0) params.initial_delay = tuned_delay;
      return std::make_shared<AdaptiveTunedPolicy>(params);
    }
  }
  return std::make_shared<NoDelayPolicy>();
}

}  // namespace txc::core
