#include "core/numeric_opt.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace txc::core {

namespace {

/// The discretized game: staggered grids (policy at cell centers, adversary
/// at cell edges) so commit/abort at each pair is unambiguous, plus the
/// "never commits" outside option as the last adversary column.
struct Game {
  int n;            // policy cells
  int m;            // adversary columns (edges + never-commits)
  double width;     // cell width
  double support;   // B / (k-1)
  MinimaxConfig config;

  explicit Game(const MinimaxConfig& cfg) : config(cfg) {
    n = cfg.policy_points;
    m = cfg.adversary_points + 1;
    support = cfg.abort_cost / (cfg.chain_length - 1.0);
    width = support / n;
  }

  [[nodiscard]] double grace_at(int i) const noexcept {
    return width * (i + 0.5);
  }
  [[nodiscard]] double remaining_at(int j) const noexcept {
    // Adversary cells are edges of the policy grid, rescaled if the grids
    // differ in resolution; j in [0, adversary_points).
    return support * static_cast<double>(j + 1) / config.adversary_points;
  }

  /// Competitive ratio of pure policy x_i against adversary column j.
  [[nodiscard]] double ratio(int i, int j) const noexcept {
    const double B = config.abort_cost;
    const double k = config.chain_length;
    const bool wins = config.mode == ResolutionMode::kRequestorWins;
    if (j == m - 1) {
      // Never commits: every grace period is pure waste.
      const double cost =
          wins ? k * grace_at(i) + B : (k - 1.0) * (grace_at(i) + B);
      const double opt = wins ? B : (k - 1.0) * B;
      return cost / opt;
    }
    const double D = remaining_at(j);
    const bool commits = grace_at(i) > D;
    double cost;
    if (commits) {
      cost = (k - 1.0) * D;
    } else {
      cost = wins ? k * grace_at(i) + B : (k - 1.0) * (grace_at(i) + B);
    }
    const double opt =
        wins ? std::min((k - 1.0) * D, B) : (k - 1.0) * std::min(D, B);
    return cost / opt;
  }
};

}  // namespace

double MinimaxSolution::cdf_at(double x) const noexcept {
  double cumulative = 0.0;
  for (std::size_t i = 0; i < grace_grid.size(); ++i) {
    const double left = grace_grid[i] - 0.5 * cell_width;
    const double right = grace_grid[i] + 0.5 * cell_width;
    const double cell_mass = pdf[i] * cell_width;
    if (x >= right) {
      cumulative += cell_mass;
      continue;
    }
    if (x > left) cumulative += cell_mass * (x - left) / cell_width;
    break;
  }
  return cumulative;
}

MinimaxSolution solve_minimax(const MinimaxConfig& config) {
  assert(config.chain_length >= 2);
  const Game game{config};
  const int n = game.n;
  const int m = game.m;

  // Brown fictitious play with incremental payoff bookkeeping:
  //   policy_cost[i]  = sum over adversary picks so far of ratio(i, j)
  //   adversary_pay[j] = sum over policy picks so far of ratio(i, j)
  std::vector<double> policy_cost(static_cast<std::size_t>(n), 0.0);
  std::vector<double> adversary_pay(static_cast<std::size_t>(m), 0.0);
  std::vector<double> policy_counts(static_cast<std::size_t>(n), 0.0);

  // Seed: adversary opens with the never-commits column (the move that
  // punishes "always wait", forcing the policy to spread mass).
  int adversary_pick = m - 1;
  for (int round = 0; round < config.rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      policy_cost[static_cast<std::size_t>(i)] +=
          game.ratio(i, adversary_pick);
    }
    // Policy best response (ties toward the smaller grace period).
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (policy_cost[static_cast<std::size_t>(i)] <
          policy_cost[static_cast<std::size_t>(best)]) {
        best = i;
      }
    }
    policy_counts[static_cast<std::size_t>(best)] += 1.0;
    for (int j = 0; j < m; ++j) {
      adversary_pay[static_cast<std::size_t>(j)] += game.ratio(best, j);
    }
    // Adversary best response to the policy's empirical average.
    adversary_pick = 0;
    for (int j = 1; j < m; ++j) {
      if (adversary_pay[static_cast<std::size_t>(j)] >
          adversary_pay[static_cast<std::size_t>(adversary_pick)]) {
        adversary_pick = j;
      }
    }
  }

  MinimaxSolution solution;
  solution.cell_width = game.width;
  solution.grace_grid.resize(static_cast<std::size_t>(n));
  solution.pdf.resize(static_cast<std::size_t>(n));
  solution.cdf.resize(static_cast<std::size_t>(n));
  std::vector<double> mass(static_cast<std::size_t>(n));
  double cumulative = 0.0;
  for (int i = 0; i < n; ++i) {
    solution.grace_grid[static_cast<std::size_t>(i)] = game.grace_at(i);
    mass[static_cast<std::size_t>(i)] =
        policy_counts[static_cast<std::size_t>(i)] / config.rounds;
    solution.pdf[static_cast<std::size_t>(i)] =
        mass[static_cast<std::size_t>(i)] / game.width;
    cumulative += mass[static_cast<std::size_t>(i)];
    solution.cdf[static_cast<std::size_t>(i)] = cumulative;
  }
  solution.game_value = grid_worst_ratio(config, mass);
  return solution;
}

double grid_worst_ratio(const MinimaxConfig& config,
                        const std::vector<double>& mass) {
  const Game game{config};
  assert(static_cast<int>(mass.size()) == game.n);
  double worst = 0.0;
  for (int j = 0; j < game.m; ++j) {
    double expected = 0.0;
    for (int i = 0; i < game.n; ++i) {
      expected += mass[static_cast<std::size_t>(i)] * game.ratio(i, j);
    }
    worst = std::max(worst, expected);
  }
  return worst;
}

}  // namespace txc::core
