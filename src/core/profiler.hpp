// txconflict — empirical transaction-length profiler (Section 5.2).
//
// "This corresponds to a profiler which records the empirical mean over all
// successful executions of a transaction, and uses this information when
// deciding the grace period length."
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace txc::core {

/// Raw monotone cycle stamp for attempt timing: rdtsc on x86-64, the virtual
/// counter register on aarch64, steady_clock nanoseconds elsewhere.  Only
/// differences are meaningful; the unit ("cycles") is whatever the hardware
/// counter ticks in.  Deliberately unserialized — a fence per transaction
/// would cost more than the measurement is worth, and attempt timing
/// tolerates a few out-of-order ticks.
[[nodiscard]] inline std::uint64_t cycle_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t virtual_timer = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(virtual_timer));
  return virtual_timer;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Cycle-accurate attempt accounting for the STM fast path.  An instance
/// attached via Stm::attach_profile / Norec::attach_profile receives every
/// attempt's duration (commit and abort separately) from all threads;
/// counters are relaxed atomics, so means are cheap to read live and exact
/// after threads joined.  mean_commit_cycles() is the natural feed for
/// MeanProfiler-backed policies when lengths are measured in cycles.
class AttemptProfile {
 public:
  void record_commit(std::uint64_t cycles) noexcept {
    commits_.fetch_add(1, std::memory_order_relaxed);
    commit_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  }
  void record_abort(std::uint64_t cycles) noexcept {
    aborts_.fetch_add(1, std::memory_order_relaxed);
    abort_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  }
  /// Conflict attributed to lock-table placement (disjoint addresses on a
  /// shared stripe) rather than data contention — see
  /// stm::StmStats::false_conflicts, which substrates mirror here so
  /// per-phase profiles can attribute their aborts.
  void record_false_conflict() noexcept {
    false_conflicts_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Two distinct write-set cells mapped onto one stripe at commit — see
  /// stm::StmStats::stripe_collisions.
  void record_stripe_collision() noexcept {
    stripe_collisions_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t commits() const noexcept {
    return commits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    return aborts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t false_conflicts() const noexcept {
    return false_conflicts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stripe_collisions() const noexcept {
    return stripe_collisions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_commit_cycles() const noexcept {
    const std::uint64_t n = commits();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        commit_cycles_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }
  [[nodiscard]] double mean_abort_cycles() const noexcept {
    const std::uint64_t n = aborts();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        abort_cycles_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  void reset() noexcept {
    commits_.store(0, std::memory_order_relaxed);
    aborts_.store(0, std::memory_order_relaxed);
    commit_cycles_.store(0, std::memory_order_relaxed);
    abort_cycles_.store(0, std::memory_order_relaxed);
    false_conflicts_.store(0, std::memory_order_relaxed);
    stripe_collisions_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> commit_cycles_{0};
  std::atomic<std::uint64_t> abort_cycles_{0};
  std::atomic<std::uint64_t> false_conflicts_{0};
  std::atomic<std::uint64_t> stripe_collisions_{0};
};

/// Concurrent log-scaled histogram for completion-time distributions
/// (HdrHistogram-lite).  Values bucket by octave (power of two) with
/// kSubBuckets linear sub-buckets per octave, bounding the relative
/// quantization error at 1/kSubBuckets while covering the full uint64
/// range in a few KiB of counters.  record() is a relaxed fetch_add plus a
/// contention-free running max, safe from any number of threads;
/// quantile() scans the buckets and is meant for after workers joined (a
/// live read is a harmless approximation).  Unit-agnostic: feed it cycles
/// (core::cycle_now deltas), nanoseconds, whatever — quantile() answers in
/// the same unit.  The open-loop KV bench and the scheduler-adversary tail
/// harness record completion-time cycles here and calibrate to
/// microseconds at report time.
///
/// Edge cases are defined, not UB: quantile() of an empty histogram (or a
/// NaN q) returns 0, out-of-range q clamps to [0, 1], and the bucket
/// geometry is a *type* parameter — histograms of different resolution are
/// different types, so merge() across differently-sized bucket arrays is a
/// compile error instead of silent counter misalignment.  Self-merge is
/// the one remaining foot-gun (it reads the buckets it is writing) and is
/// rejected by assert.
template <std::size_t SubBucketBitsV>
class BasicLatencyHistogram {
 public:
  static constexpr std::size_t kSubBucketBits = SubBucketBitsV;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// One linear region for values < kSubBuckets plus one octave of
  /// sub-buckets for each remaining leading-bit position.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;
  static_assert(SubBucketBitsV >= 1 && SubBucketBitsV < 16,
                "sub-bucket resolution out of the sane range");

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Exact running max (quantile(1.0) only bounds it to ~one bucket
    // width): CAS loop entered only while `value` actually raises the max.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Largest value ever recorded (exact, unlike quantile(1.0)); 0 when
  /// empty.
  [[nodiscard]] std::uint64_t max_recorded() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Upper edge of the bucket containing the q-quantile sample (q in [0,1]):
  /// at least a q-fraction of recorded values are <= the returned value, up
  /// to the ~1/kSubBuckets bucket width.  Returns 0 when the histogram is
  /// empty or q is NaN; q outside [0, 1] clamps.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    if (!(q == q)) return 0;  // NaN: no defined rank — not a crash
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t cumulative = 0;
    for (std::size_t index = 0; index < kBucketCount; ++index) {
      cumulative += buckets_[index].load(std::memory_order_relaxed);
      if (cumulative >= rank) return bucket_upper_edge(index);
    }
    return bucket_upper_edge(kBucketCount - 1);
  }

  /// Fold another histogram's counts into this one (post-join aggregation
  /// of per-shard histograms).  Only histograms of the same resolution are
  /// mergeable — a different SubBucketBits is a different type, so the
  /// mismatch is caught by the compiler, not by corrupted buckets.
  void merge(const BasicLatencyHistogram& other) noexcept {
    assert(&other != this && "self-merge would double-count live buckets");
    for (std::size_t index = 0; index < kBucketCount; ++index) {
      const std::uint64_t delta =
          other.buckets_[index].load(std::memory_order_relaxed);
      if (delta != 0) {
        buckets_[index].fetch_add(delta, std::memory_order_relaxed);
      }
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    const std::uint64_t other_max = other.max_recorded();
    while (other_max > seen &&
           !max_.compare_exchange_weak(seen, other_max,
                                       std::memory_order_relaxed)) {
    }
  }

  void reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  /// Values below kSubBuckets index directly; above, the octave comes from
  /// the leading bit and the sub-bucket from the kSubBucketBits bits below
  /// it — monotone in `value`, so bucket order is value order.
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int width = 64 - __builtin_clzll(value);  // MSB position + 1
    const auto octave =
        static_cast<std::size_t>(width) - kSubBucketBits;  // >= 1
    const auto sub = static_cast<std::size_t>(
        (value >> (octave - 1)) & (kSubBuckets - 1));
    return octave * kSubBuckets + sub;
  }

  [[nodiscard]] static std::uint64_t bucket_upper_edge(
      std::size_t index) noexcept {
    const std::size_t octave = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    if (octave == 0) return sub;  // exact: bucket holds the single value
    const std::uint64_t base = std::uint64_t{1}
                               << (octave + kSubBucketBits - 1);
    const std::uint64_t width = std::uint64_t{1} << (octave - 1);
    return base + (static_cast<std::uint64_t>(sub) + 1) * width - 1;
  }

  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// The default resolution every in-tree consumer shares: 32 sub-buckets per
/// octave, ~3% relative error.
using LatencyHistogram = BasicLatencyHistogram<5>;

/// Streams committed-transaction lengths and exposes the empirical mean once
/// enough samples accumulated.  An optional exponential decay lets the
/// profile track phase changes (fresh workloads) instead of the whole-run
/// average; decay = 1.0 reproduces the plain arithmetic mean from the paper.
class MeanProfiler {
 public:
  explicit MeanProfiler(std::size_t min_samples = 8, double decay = 1.0) noexcept
      : min_samples_(min_samples), decay_(decay) {}

  void record_commit_length(double length) noexcept {
    weight_ = weight_ * decay_ + 1.0;
    weighted_sum_ = weighted_sum_ * decay_ + length;
    ++count_;
  }

  /// Empirical mean, or nullopt until min_samples commits were observed.
  [[nodiscard]] std::optional<double> mean_hint() const noexcept {
    if (count_ < min_samples_ || weight_ <= 0.0) return std::nullopt;
    return weighted_sum_ / weight_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return count_; }

  void reset() noexcept {
    weighted_sum_ = 0.0;
    weight_ = 0.0;
    count_ = 0;
  }

 private:
  std::size_t min_samples_;
  double decay_;
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace txc::core
