// txconflict — empirical transaction-length profiler (Section 5.2).
//
// "This corresponds to a profiler which records the empirical mean over all
// successful executions of a transaction, and uses this information when
// deciding the grace period length."
#pragma once

#include <cstddef>
#include <optional>

namespace txc::core {

/// Streams committed-transaction lengths and exposes the empirical mean once
/// enough samples accumulated.  An optional exponential decay lets the
/// profile track phase changes (fresh workloads) instead of the whole-run
/// average; decay = 1.0 reproduces the plain arithmetic mean from the paper.
class MeanProfiler {
 public:
  explicit MeanProfiler(std::size_t min_samples = 8, double decay = 1.0) noexcept
      : min_samples_(min_samples), decay_(decay) {}

  void record_commit_length(double length) noexcept {
    weight_ = weight_ * decay_ + 1.0;
    weighted_sum_ = weighted_sum_ * decay_ + length;
    ++count_;
  }

  /// Empirical mean, or nullopt until min_samples commits were observed.
  [[nodiscard]] std::optional<double> mean_hint() const noexcept {
    if (count_ < min_samples_ || weight_ <= 0.0) return std::nullopt;
    return weighted_sum_ / weight_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return count_; }

  void reset() noexcept {
    weighted_sum_ = 0.0;
    weight_ = 0.0;
    count_ = 0;
  }

 private:
  std::size_t min_samples_;
  double decay_;
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace txc::core
