// txconflict — empirical transaction-length profiler (Section 5.2).
//
// "This corresponds to a profiler which records the empirical mean over all
// successful executions of a transaction, and uses this information when
// deciding the grace period length."
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace txc::core {

/// Raw monotone cycle stamp for attempt timing: rdtsc on x86-64, the virtual
/// counter register on aarch64, steady_clock nanoseconds elsewhere.  Only
/// differences are meaningful; the unit ("cycles") is whatever the hardware
/// counter ticks in.  Deliberately unserialized — a fence per transaction
/// would cost more than the measurement is worth, and attempt timing
/// tolerates a few out-of-order ticks.
[[nodiscard]] inline std::uint64_t cycle_now() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t virtual_timer = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(virtual_timer));
  return virtual_timer;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Cycle-accurate attempt accounting for the STM fast path.  An instance
/// attached via Stm::attach_profile / Norec::attach_profile receives every
/// attempt's duration (commit and abort separately) from all threads;
/// counters are relaxed atomics, so means are cheap to read live and exact
/// after threads joined.  mean_commit_cycles() is the natural feed for
/// MeanProfiler-backed policies when lengths are measured in cycles.
class AttemptProfile {
 public:
  void record_commit(std::uint64_t cycles) noexcept {
    commits_.fetch_add(1, std::memory_order_relaxed);
    commit_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  }
  void record_abort(std::uint64_t cycles) noexcept {
    aborts_.fetch_add(1, std::memory_order_relaxed);
    abort_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t commits() const noexcept {
    return commits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t aborts() const noexcept {
    return aborts_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean_commit_cycles() const noexcept {
    const std::uint64_t n = commits();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        commit_cycles_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }
  [[nodiscard]] double mean_abort_cycles() const noexcept {
    const std::uint64_t n = aborts();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        abort_cycles_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  void reset() noexcept {
    commits_.store(0, std::memory_order_relaxed);
    aborts_.store(0, std::memory_order_relaxed);
    commit_cycles_.store(0, std::memory_order_relaxed);
    abort_cycles_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> commit_cycles_{0};
  std::atomic<std::uint64_t> abort_cycles_{0};
};

/// Streams committed-transaction lengths and exposes the empirical mean once
/// enough samples accumulated.  An optional exponential decay lets the
/// profile track phase changes (fresh workloads) instead of the whole-run
/// average; decay = 1.0 reproduces the plain arithmetic mean from the paper.
class MeanProfiler {
 public:
  explicit MeanProfiler(std::size_t min_samples = 8, double decay = 1.0) noexcept
      : min_samples_(min_samples), decay_(decay) {}

  void record_commit_length(double length) noexcept {
    weight_ = weight_ * decay_ + 1.0;
    weighted_sum_ = weighted_sum_ * decay_ + length;
    ++count_;
  }

  /// Empirical mean, or nullopt until min_samples commits were observed.
  [[nodiscard]] std::optional<double> mean_hint() const noexcept {
    if (count_ < min_samples_ || weight_ <= 0.0) return std::nullopt;
    return weighted_sum_ / weight_;
  }

  [[nodiscard]] std::size_t samples() const noexcept { return count_; }

  void reset() noexcept {
    weighted_sum_ = 0.0;
    weight_ = 0.0;
    count_ = 0;
  }

 private:
  std::size_t min_samples_;
  double decay_;
  double weighted_sum_ = 0.0;
  double weight_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace txc::core
