#include "core/estimators.hpp"

#include <algorithm>
#include <cmath>

namespace txc::core {

P2Quantile::P2Quantile(double q) noexcept : q_(q) { reset(); }

void P2Quantile::reset() noexcept {
  heights_.fill(0.0);
  positions_ = {1, 2, 3, 4, 5};
  desired_ = {1, 1 + 2 * q_, 1 + 4 * q_, 3 + 2 * q_, 5};
  increments_ = {0, q_ / 2, q_, (1 + q_) / 2, 1};
  count_ = 0;
}

double P2Quantile::parabolic(int i, double d) const noexcept {
  // Piecewise-parabolic prediction of marker i's height when its position
  // moves by d (the core P^2 interpolation formula).
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const noexcept {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double x) noexcept {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  // Locate the cell containing x and clamp the extreme markers.
  int cell = 0;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double drift = desired_[i] - positions_[i];
    const bool can_move_right = positions_[i + 1] - positions_[i] > 1.0;
    const bool can_move_left = positions_[i - 1] - positions_[i] < -1.0;
    if ((drift >= 1.0 && can_move_right) || (drift <= -1.0 && can_move_left)) {
      const double d = drift >= 1.0 ? 1.0 : -1.0;
      double candidate = parabolic(i, d);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = linear(i, d);
      }
      positions_[i] += d;
    }
  }
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile: nearest-rank on the sorted prefix.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(count_));
    const auto rank = static_cast<std::size_t>(
        std::ceil(q_ * static_cast<double>(count_)));
    return sorted[std::min(count_ - 1, rank == 0 ? 0 : rank - 1)];
  }
  return heights_[2];
}

}  // namespace txc::core
