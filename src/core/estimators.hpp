// txconflict — online statistics estimators for adaptive policies.
//
// The paper's mean-constrained strategies (Section 5.2) assume a profiler
// that knows the mean µ of the transaction-length distribution.  In a live
// system that mean must be *estimated online*, from a censored stream (a
// receiver observed to commit within its grace period reveals its remaining
// time; an expired grace period reveals only a lower bound).  This header
// provides the estimators those adaptive policies build on:
//
//   * EwmaEstimator    — exponentially-weighted moving average + variance,
//                        tracking non-stationary workloads (phase changes);
//   * P2Quantile       — the P² algorithm (Jain & Chlamtac 1985): streaming
//                        quantile estimation in O(1) space, no sample buffer;
//   * CensoredMeanEstimator — EWMA over a censored stream: exact samples
//                        update directly, right-censored samples (we only
//                        know X > bound) push the estimate up by an
//                        exponential-tail correction.
//
// All estimators are deterministic and allocation-free after construction.
#pragma once

#include <array>
#include <cstddef>
#include <optional>

namespace txc::core {

/// Exponentially-weighted moving average and variance.
///
/// alpha is the weight of each new observation (0 < alpha <= 1); the
/// effective memory is ~1/alpha samples.  Variance uses the standard
/// EWMA-variance recursion (West 1979).
class EwmaEstimator {
 public:
  explicit EwmaEstimator(double alpha = 0.05) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    ++count_;
    if (count_ == 1) {
      mean_ = x;
      variance_ = 0.0;
      return;
    }
    const double delta = x - mean_;
    mean_ += alpha_ * delta;
    variance_ = (1.0 - alpha_) * (variance_ + alpha_ * delta * delta);
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept { return variance_; }
  [[nodiscard]] std::optional<double> mean_if_ready(
      std::size_t min_samples) const noexcept {
    if (count_ < min_samples) return std::nullopt;
    return mean_;
  }

  void reset() noexcept {
    mean_ = 0.0;
    variance_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double mean_ = 0.0;
  double variance_ = 0.0;
  std::size_t count_ = 0;
};

/// Streaming quantile estimation via the P² algorithm (Jain & Chlamtac,
/// CACM 1985): five markers whose heights approximate the q-quantile without
/// storing samples.  Used by adaptive policies that want e.g. the 90th
/// percentile of observed remaining times as a robust grace-period cap.
class P2Quantile {
 public:
  /// \param q  the quantile to track, in (0, 1) — e.g. 0.9 for the p90.
  explicit P2Quantile(double q) noexcept;

  /// Feed one observation.  The first five samples are stored exactly; from
  /// the sixth on, the five markers are nudged by parabolic (falling back to
  /// linear) interpolation so memory stays O(1) regardless of stream length.
  void add(double x) noexcept;

  /// Current estimate; exact while fewer than 5 samples were seen.
  [[nodiscard]] double value() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double quantile() const noexcept { return q_; }

  void reset() noexcept;

 private:
  [[nodiscard]] double parabolic(int i, double d) const noexcept;
  [[nodiscard]] double linear(int i, double d) const noexcept;

  double q_;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
  std::size_t count_ = 0;
};

/// EWMA mean over a right-censored stream.
///
/// Committed receivers reveal their exact remaining time D; expired grace
/// periods reveal only D > bound.  Treating the censored observation as if
/// the tail were exponential with the current mean m, the conditional
/// expectation is E[D | D > bound] = bound + m, which is what a censored
/// sample contributes.  This keeps the estimate from collapsing toward the
/// (short) observed commits — the classic bias of ignoring censored data.
class CensoredMeanEstimator {
 public:
  /// \param alpha         EWMA weight per observation (memory ~ 1/alpha).
  /// \param initial_mean  value reported (and used as the tail correction)
  ///                      until the first observation arrives — the
  ///                      bootstrap delay of AdaptiveTunedPolicy.
  explicit CensoredMeanEstimator(double alpha = 0.05,
                                 double initial_mean = 0.0) noexcept
      : ewma_(alpha), initial_mean_(initial_mean) {}

  /// An uncensored observation: the remaining time was measured exactly
  /// (the receiver committed within its grace period).
  void add_exact(double x) noexcept { ewma_.add(x); }

  /// A right-censored observation: only X > bound is known (the grace
  /// period expired).  Contributes bound + current mean, the conditional
  /// expectation under an exponential tail.
  void add_censored(double bound) noexcept {
    const double current =
        ewma_.count() == 0 ? initial_mean_ : ewma_.mean();
    ewma_.add(bound + current);
  }

  [[nodiscard]] double mean() const noexcept {
    return ewma_.count() == 0 ? initial_mean_ : ewma_.mean();
  }
  [[nodiscard]] std::size_t count() const noexcept { return ewma_.count(); }
  [[nodiscard]] std::optional<double> mean_if_ready(
      std::size_t min_samples) const noexcept {
    return ewma_.mean_if_ready(min_samples);
  }

  void reset() noexcept { ewma_.reset(); }

 private:
  EwmaEstimator ewma_;
  double initial_mean_;
};

}  // namespace txc::core
