#include "htm/htm.hpp"

#include <algorithm>
#include <cassert>

#include "conflict/grace.hpp"

namespace txc::htm {

// ---------------------------------------------------------------------------
// Per-core runtime state
// ---------------------------------------------------------------------------

struct HtmSystem::Core {
  explicit Core(CoreId core_id, const mem::CacheConfig& l1_config,
                sim::Rng core_rng)
      : id(core_id), l1(l1_config), rng(core_rng) {}

  CoreId id;
  mem::L1Cache l1;
  sim::Rng rng;
  CoreStats stats;

  /// Published so seniority-based arbiters can weigh this core's attempt
  /// against an enemy's.  Pure bookkeeping for ConflictViews: kills are
  /// delivered through abort_core, never through the descriptor CAS (the
  /// simulator is single-threaded).
  conflict::TxDescriptor descriptor;

  Transaction tx;
  std::size_t op_index = 0;
  bool in_tx = false;
  bool fallback = false;  // execute the current attempt non-transactionally
  Tick tx_start = 0;
  std::uint32_t attempt = 0;  // aborts of the current transaction

  /// Bumped on commit/abort/restart; pending events captured with an older
  /// generation are dead.
  std::uint64_t generation = 0;

  /// Receiver-side: deadline of the grace period currently granted to a
  /// requestor (assumption (b): at most one grace period at a time), plus
  /// what was granted, when, and the chain length — for outcome feedback.
  std::optional<Tick> grace_deadline;
  double granted_grace = 0.0;
  Tick grace_start = 0;
  int grace_chain = 2;

  /// Requestor-side (requestor-at-risk stalls): the grace period this core
  /// granted itself before self-aborting, for outcome feedback.
  double requested_grace = 0.0;
  /// Whether the current stall is a self-timeout wait (kAbortSelf verdict)
  /// as opposed to waiting behind a receiver's grace period; decides which
  /// side's feedback wake_waiters owes on the receiver's commit.
  bool self_timeout_stall = false;

  /// Requestor-side: the core whose transaction we are stalled on, or -1.
  int waiting_on = -1;
  std::uint64_t stall_epoch = 0;  // invalidates stale requestor timeouts
  Tick stall_start = 0;

  /// Lazy-validation commit phase: exclusive ownership of the write set is
  /// acquired here, in ascending line order, not during execution.
  bool committing = false;
  std::vector<LineId> commit_set;
  std::size_t commit_index = 0;

  std::unordered_map<LineId, std::uint64_t> write_buffer;
};

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

HtmSystem::HtmSystem(HtmConfig config, std::shared_ptr<Workload> workload)
    : config_(std::move(config)),
      workload_(std::move(workload)),
      directory_(config_.cores) {
  assert(config_.cores >= 1 && config_.cores <= mem::kMaxCores);
  assert((config_.policy != nullptr || config_.arbiter != nullptr) &&
         "HtmConfig::policy or HtmConfig::arbiter must be set");
  // Pinning the GraceArbiter wrap to config_.mode (instead of the policy's
  // own flavor) keeps HtmConfig::mode authoritative, as it always was.
  arbiter_ = config_.arbiter != nullptr
                 ? config_.arbiter
                 : std::make_shared<conflict::GraceArbiter>(config_.policy,
                                                            config_.mode);
  needs_seniority_ = arbiter_->needs_seniority();
  if (config_.noc.has_value()) {
    // Ensure the mesh holds at least one tile per core.
    noc::MeshConfig mesh = *config_.noc;
    if (mesh.width * mesh.height < config_.cores) {
      mesh = noc::MeshNoc::fit(config_.cores, mesh);
    }
    noc_.emplace(mesh);
  }
  if (config_.l2.has_value()) l2_.emplace(*config_.l2);
  sim::Rng seeder{config_.seed};
  cores_.reserve(config_.cores);
  for (CoreId core = 0; core < config_.cores; ++core) {
    cores_.push_back(std::make_unique<Core>(core, config_.l1, seeder.split()));
  }
}

HtmSystem::~HtmSystem() = default;

// ---------------------------------------------------------------------------
// Scheduling helpers
// ---------------------------------------------------------------------------

void HtmSystem::schedule_guarded(CoreId core, Tick delay,
                                 std::function<void()> fn) {
  const std::uint64_t generation = cores_[core]->generation;
  queue_.schedule_after(delay, [this, core, generation, fn = std::move(fn)] {
    if (cores_[core]->generation == generation) fn();
  });
}

void HtmSystem::start_next_transaction(CoreId core) {
  Core& c = *cores_[core];
  c.attempt = 0;
  c.fallback = false;
  // Seniority is assigned once per transaction and survives its retries
  // (Timestamp/Greedy age long-suffering transactions into priority); work
  // credit likewise accumulates across attempts.  Purely local arbiters
  // never look, so skip the bookkeeping.
  if (needs_seniority_) {
    c.descriptor.start_time.store(++start_ticket_, std::memory_order_relaxed);
    c.descriptor.priority.store(0, std::memory_order_relaxed);
  }
  c.tx = workload_->next_transaction(core, c.rng);
  const std::uint64_t think = workload_->think_time(core, c.rng);
  schedule_guarded(core, think, [this, core] { begin_attempt(core); });
}

void HtmSystem::begin_attempt(CoreId core) {
  Core& c = *cores_[core];
  c.in_tx = !c.fallback;
  c.descriptor.status.store(
      static_cast<std::uint32_t>(conflict::TxStatus::kActive),
      std::memory_order_relaxed);
  c.tx_start = queue_.now();
  c.op_index = 0;
  c.committing = false;
  c.commit_set.clear();
  c.commit_index = 0;
  c.write_buffer.clear();
  step(core);
}

void HtmSystem::step(CoreId core) {
  Core& c = *cores_[core];
  if (!c.committing && c.op_index >= c.tx.size()) {
    if (!c.in_tx || c.write_buffer.empty()) {
      commit(core);
      return;
    }
    // Lazy validation (Section 8.2): enter the commit phase and acquire the
    // write set exclusively, in ascending line order so that two committers
    // can never deadlock against each other.
    c.committing = true;
    c.commit_set.clear();
    c.commit_set.reserve(c.write_buffer.size());
    for (const auto& [line, value] : c.write_buffer) c.commit_set.push_back(line);
    std::sort(c.commit_set.begin(), c.commit_set.end());
    c.commit_index = 0;
  }
  if (c.committing) {
    if (c.commit_index >= c.commit_set.size()) {
      commit(core);
      return;
    }
    access(core);
    return;
  }
  const TxOp& op = c.tx[c.op_index];
  if (op.kind == TxOp::Kind::kWork) {
    schedule_guarded(core, std::max<Tick>(op.cycles, 1),
                     [this, core] { finish_op(core); });
    return;
  }
  access(core);
}

void HtmSystem::finish_op(CoreId core) {
  Core& c = *cores_[core];
  if (c.committing) {
    ++c.commit_index;
  } else {
    ++c.op_index;
  }
  step(core);
}

void HtmSystem::retry_access(CoreId core) { access(core); }

// ---------------------------------------------------------------------------
// Memory access and conflict detection
// ---------------------------------------------------------------------------

std::vector<CoreId> HtmSystem::conflicting_receivers(CoreId requestor,
                                                     LineId line,
                                                     bool is_write) const {
  // Algorithm 1: a write conflicts with any transactional copy; a read
  // conflicts only with a transactionally *modified* copy.
  std::vector<CoreId> result;
  for (const CoreId holder : directory_.holders_excluding(line, requestor)) {
    const Core& receiver = *cores_[holder];
    if (!receiver.in_tx) continue;
    const mem::CacheLine* entry = receiver.l1.find(line);
    if (entry == nullptr || !entry->transactional()) continue;
    if (is_write || entry->tx_write) result.push_back(holder);
  }
  return result;
}

void HtmSystem::access(CoreId core) {
  Core& c = *cores_[core];
  // Commit-phase acquisitions look like exclusive write requests; execution
  // ops come from the program.
  TxOp op;
  if (c.committing) {
    op.kind = TxOp::Kind::kWork;  // value handling already done at execution
    op.line = c.commit_set[c.commit_index];
  } else {
    op = c.tx[c.op_index];
  }
  const bool is_write = c.committing || op.kind != TxOp::Kind::kRead;
  if (!config_.eager_writes && c.in_tx && !c.committing &&
      op.kind == TxOp::Kind::kWrite) {
    // Lazy versioning: a transactional store is buffered locally; no
    // coherence traffic until the commit phase.
    c.write_buffer[op.line] = op.value;
    schedule_guarded(core, config_.l1_hit_latency,
                     [this, core] { finish_op(core); });
    return;
  }
  // Execution-phase reads (kRead/kRmw) only need shared access — unless the
  // eager-writes ablation is on, in which case writes (and the write half of
  // RMWs) demand exclusive ownership on the spot.
  const bool request_exclusive =
      is_write && (c.committing || !c.in_tx || config_.eager_writes);
  const std::vector<CoreId> receivers =
      conflicting_receivers(core, op.line, request_exclusive);
  if (!c.in_tx) {
    // The fallback-lock path: a non-transactional slow-path access always
    // wins against speculating transactions (real HTMs abort any
    // transaction whose transactional line is touched non-transactionally —
    // that is what makes the slow path safe), but the arbiter chooses how
    // much grace each conflicting receiver gets to try to commit first.
    for (const CoreId receiver : receivers) {
      if (arbitrate_fallback_conflict(core, receiver)) return;  // deferred
    }
    perform_access(core, op);
    return;
  }
  if (receivers.empty()) {
    perform_access(core, op);
    return;
  }
  handle_conflict(core, receivers.front());
}

noc::TileId HtmSystem::home_tile(LineId line) const noexcept {
  // Directory/L2 slices are interleaved across tiles by line id, the standard
  // static home mapping of tiled CMPs (and of Graphite).
  return static_cast<noc::TileId>(line % noc_->tiles());
}

Tick HtmSystem::remote_access_cost(CoreId core, LineId line) {
  Tick latency =
      noc_.has_value()
          ? noc_->round_trip(core, home_tile(line), queue_.now(),
                             noc::MessageClass::kRequest) -
                queue_.now()
          : config_.remote_latency;
  if (!l2_.has_value()) return latency;

  const mem::L2Access l2_access = l2_->access(line);
  if (!l2_access.hit) latency += config_.memory_latency;
  if (l2_access.evicted_valid) {
    // Inclusive hierarchy: every L1 copy of the victim must be dropped, and a
    // transactional copy means the holder's transaction dies with it.
    for (const CoreId holder :
         directory_.holders_excluding(l2_access.evicted_line, mem::kMaxCores)) {
      Core& victim = *cores_[holder];
      const mem::CacheLine* entry = victim.l1.find(l2_access.evicted_line);
      if (entry != nullptr && entry->transactional() && victim.in_tx) {
        abort_core(holder, AbortReason::kCapacityL2);
      } else {
        victim.l1.invalidate(l2_access.evicted_line);
        directory_.remove(l2_access.evicted_line, holder);
      }
      l2_->count_back_invalidation();
      if (noc_.has_value()) {
        (void)noc_->traverse(home_tile(l2_access.evicted_line), holder,
                             queue_.now(), noc::MessageClass::kInvalidation);
      }
    }
  }
  return latency;
}

Tick HtmSystem::invalidation_round_trip(LineId line, CoreId holder) {
  return noc_->round_trip(home_tile(line), holder, queue_.now(),
                          noc::MessageClass::kInvalidation);
}

void HtmSystem::perform_access(CoreId core, const TxOp& op) {
  Core& c = *cores_[core];
  const bool is_write =
      c.committing ||
      ((!c.in_tx || config_.eager_writes) && op.kind != TxOp::Kind::kRead);
  mem::CacheLine* entry = c.l1.find(op.line);
  Tick latency = config_.l1_hit_latency;
  const bool hit =
      entry != nullptr && (entry->state == mem::LineState::kModified ||
                           (!is_write && entry->state == mem::LineState::kShared));
  if (!hit) {
    const std::uint64_t generation_before = c.generation;
    latency = remote_access_cost(core, op.line);
    if (c.generation != generation_before) {
      // An inclusive-L2 back-invalidation just aborted this very core; the
      // restart is already scheduled, so this access evaporates.
      return;
    }
    entry = c.l1.find(op.line);  // the back-invalidation may have dropped it
    if (entry == nullptr) {
      const mem::InsertResult inserted = c.l1.insert(op.line);
      if (inserted.evicted_valid) {
        directory_.remove(inserted.evicted_line, core);
        if (inserted.evicted_transactional && c.in_tx) {
          // Algorithm 1 line 4: evicting a transactional line aborts.
          abort_core(core, AbortReason::kCapacity);
          return;
        }
      }
      entry = inserted.slot;
    }
    if (is_write) {
      // Invalidate every remaining (non-transactional) copy; under the NoC
      // the write is granted when the last invalidation ack returns.
      Tick last_ack = queue_.now() + latency;
      for (const CoreId holder :
           directory_.holders_excluding(op.line, core)) {
        cores_[holder]->l1.invalidate(op.line);
        directory_.remove(op.line, holder);
        directory_.count_invalidation();
        if (noc_.has_value()) {
          last_ack =
              std::max(last_ack, invalidation_round_trip(op.line, holder));
        }
      }
      latency = last_ack - queue_.now();
      directory_.set_owner(op.line, core);
      entry->state = mem::LineState::kModified;
    } else {
      const mem::DirectoryEntry* record = directory_.find(op.line);
      if (record != nullptr && record->state == mem::DirectoryState::kModified &&
          record->owner != core) {
        cores_[record->owner]->l1.downgrade(op.line);
        directory_.count_downgrade();
      }
      directory_.add_sharer(op.line, core);
      entry->state = mem::LineState::kShared;
    }
  }
  if (c.in_tx) {
    if (is_write) {
      entry->tx_write = true;
    } else {
      entry->tx_read = true;
    }
    // Karma-style arbiters rank transactions by work performed; every
    // transactional access is one unit of credit (kept across aborts —
    // start_next_transaction resets it, begin_attempt does not).  Purely
    // local arbiters never look, so skip the credit like the reset.
    if (needs_seniority_) {
      c.descriptor.priority.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Value semantics: buffered inside the transaction, direct otherwise.
  switch (op.kind) {
    case TxOp::Kind::kRead:
      break;
    case TxOp::Kind::kWrite:
      if (c.in_tx) {
        c.write_buffer[op.line] = op.value;
      } else {
        memory_values_[op.line] = op.value;
      }
      break;
    case TxOp::Kind::kRmw: {
      std::uint64_t current = 0;
      if (c.in_tx) {
        const auto buffered = c.write_buffer.find(op.line);
        current = buffered != c.write_buffer.end()
                      ? buffered->second
                      : memory_value(op.line);
        c.write_buffer[op.line] = current + op.value;
      } else {
        memory_values_[op.line] = memory_value(op.line) + op.value;
      }
      break;
    }
    case TxOp::Kind::kWork:
      break;
  }

  schedule_guarded(core, latency, [this, core] { finish_op(core); });
}

// ---------------------------------------------------------------------------
// Conflict resolution — the decision point the paper studies
// ---------------------------------------------------------------------------

core::ConflictContext HtmSystem::make_context_at(CoreId at_risk,
                                                 CoreId receiver,
                                                 CoreId requestor) const {
  // Section 4, footnote 1: B is the time the transaction at risk has already
  // been running plus a fixed cleanup cost.  Under requestor-wins the
  // receiver is at risk; under requestor-aborts the requestor is; the
  // fallback-lock path always puts the receiver at risk.
  core::ConflictContext context;
  context.abort_cost =
      config_.abort_cost_cleanup +
      static_cast<double>(queue_.now() - cores_[at_risk]->tx_start);
  context.chain_length = chain_length(requestor, receiver);
  context.attempt = cores_[at_risk]->attempt;
  if (config_.use_profiler_mean) context.mean_hint = profiler_.mean_hint();
  if (config_.oracle_hints) {
    context.remaining_hint = ideal_remaining_cycles(at_risk);
  }
  if (config_.record_conflicts) {
    conflict_trace_.push_back({context.abort_cost, context.chain_length,
                               ideal_remaining_cycles(at_risk)});
  }
  return context;
}

conflict::ConflictView HtmSystem::make_view(
    const core::ConflictContext& context, CoreId requestor,
    CoreId receiver) const {
  conflict::ConflictView view;
  view.self = &cores_[requestor]->descriptor;
  view.enemy = &cores_[receiver]->descriptor;
  view.can_abort_enemy = true;  // the simulator can abort receivers remotely
  view.context = context;
  return view;
}

double HtmSystem::ideal_remaining_cycles(CoreId core) const {
  // Accesses are costed at the remote round trip: a transaction's lines are
  // typically freshly fetched or upgraded, so the remote latency — not the
  // L1 hit — is the right isolated estimate.  (Under-estimating makes the
  // oracle grant too-short grace periods, which then expire.)
  const double access_cost =
      static_cast<double>(noc_.has_value()
                              ? 2 * noc_->pure_latency(
                                        0, static_cast<noc::TileId>(
                                               noc_->tiles() - 1))
                              : config_.remote_latency) +
      (l2_.has_value() ? static_cast<double>(config_.memory_latency) : 0.0);
  const Core& c = *cores_[core];
  double total = config_.commit_latency;
  if (c.committing) {
    total += static_cast<double>(c.commit_set.size() - c.commit_index) *
             access_cost;
    return total;
  }
  for (std::size_t i = c.op_index; i < c.tx.size(); ++i) {
    const TxOp& op = c.tx[i];
    total += op.kind == TxOp::Kind::kWork
                 ? static_cast<double>(std::max<Tick>(op.cycles, 1))
                 : access_cost;
  }
  // Commit-phase acquisitions for the writes buffered so far (later writes
  // are not yet known; the hint is an under-estimate for write-heavy tails).
  total += static_cast<double>(c.write_buffer.size()) * access_cost;
  return total;
}

int HtmSystem::chain_length(CoreId requestor, CoreId receiver) const {
  // Section 4.1: k counts every transaction delayed by extending the
  // receiver's execution — the receiver, the requestor, and every core
  // transitively stalled behind either of them.
  int waiters = 0;
  for (const auto& candidate : cores_) {
    if (candidate->id == requestor || candidate->id == receiver) continue;
    int hop = candidate->waiting_on;
    for (std::uint32_t depth = 0; depth < config_.cores && hop >= 0; ++depth) {
      if (static_cast<CoreId>(hop) == requestor ||
          static_cast<CoreId>(hop) == receiver) {
        ++waiters;
        break;
      }
      hop = cores_[hop]->waiting_on;
    }
  }
  return 2 + waiters;
}

bool HtmSystem::creates_cycle(CoreId requestor, CoreId receiver) const {
  int hop = cores_[receiver]->waiting_on;
  for (std::uint32_t depth = 0; depth < config_.cores && hop >= 0; ++depth) {
    if (static_cast<CoreId>(hop) == requestor) return true;
    hop = cores_[hop]->waiting_on;
  }
  return false;
}

void HtmSystem::handle_conflict(CoreId requestor, CoreId receiver) {
  Core& a = *cores_[requestor];
  Core& r = *cores_[receiver];
  ++a.stats.conflicts_as_requestor;
  ++r.stats.conflicts_as_receiver;
  if (noc_.has_value()) {
    // The receiver NACKs the coherence request (the grace-period mechanism of
    // [23]); account the message so benches can see the traffic trade-off.
    (void)noc_->traverse(receiver, requestor, queue_.now(),
                         noc::MessageClass::kNack);
  }

  if (creates_cycle(requestor, receiver)) {
    if (config_.mode == core::ResolutionMode::kRequestorAborts) {
      // Requestor-aborts semantics resolve the would-be cycle naturally:
      // the new requestor sacrifices itself and its waiters unblock.
      abort_core(requestor, AbortReason::kCycle);
      return;
    }
    // Requestor wins: a receiver that is transitively stalled on the
    // requestor can never commit during a grace period, so granting one
    // would be pure waste — abort the receiver immediately (assumption (c):
    // cyclic conflicts are detected and broken on the spot).
    abort_core(receiver, AbortReason::kCycle);
    schedule_guarded(requestor, 1,
                     [this, requestor] { retry_access(requestor); });
    return;
  }

  // Assumption (b): at most one grace period at a time.  While the receiver
  // is already inside one, further requestors stall behind it without
  // consulting the arbiter again (their wake comes from the receiver
  // finishing or the deadline firing).
  if (config_.mode == core::ResolutionMode::kRequestorWins &&
      r.grace_deadline.has_value()) {
    a.waiting_on = static_cast<int>(receiver);
    ++a.stall_epoch;
    a.stall_start = queue_.now();
    a.self_timeout_stall = false;
    return;
  }

  // One arbiter consultation per conflict: the grant carries the whole
  // grace budget plus which side dies at expiry.  The context (abort cost B
  // = the at-risk transaction's elapsed time) and the RNG stream belong to
  // the at-risk core — assumed from config_.mode, which is exact for
  // policy-driven configs (their GraceArbiter wrap is pinned to that mode,
  // preserving the historical streams).  An explicit arbiter may return the
  // other flavor; then the grant was computed against the wrong B, so it is
  // recomputed once with the verdict's at-risk side (a second draw — fine,
  // no stream parity exists for explicit arbiters).
  const CoreId assumed_at_risk =
      config_.mode == core::ResolutionMode::kRequestorWins ? receiver
                                                           : requestor;
  core::ConflictContext context =
      make_context_at(assumed_at_risk, receiver, requestor);
  conflict::GraceGrant grant = arbiter_->grace_grant(
      make_view(context, requestor, receiver), cores_[assumed_at_risk]->rng);
  const CoreId verdict_at_risk =
      grant.expiry_verdict == conflict::Decision::kAbortEnemy ? receiver
                                                              : requestor;
  if (verdict_at_risk != assumed_at_risk) {
    context = make_context_at(verdict_at_risk, receiver, requestor);
    grant = arbiter_->grace_grant(make_view(context, requestor, receiver),
                                  cores_[verdict_at_risk]->rng);
    // One correction only: the re-grant's verdict is final (budgeted
    // arbiters have a context-independent flavor, so it cannot flip back).
  }

  if (grant.expiry_verdict == conflict::Decision::kAbortEnemy) {
    // Receiver-at-risk flavor: the receiver gets the grace, the requestor
    // stalls, and at expiry the receiver is aborted.
    if (!r.grace_deadline.has_value()) {
      if (grant.grace < 1.0) {
        // Abort the receiver immediately; the requestor retries.
        abort_core(receiver, AbortReason::kConflictImmediate);
        schedule_guarded(requestor, 1,
                         [this, requestor] { retry_access(requestor); });
        return;
      }
      const Tick deadline = queue_.now() + static_cast<Tick>(grant.grace);
      r.grace_deadline = deadline;
      r.granted_grace = grant.grace;
      r.grace_start = queue_.now();
      r.grace_chain = context.chain_length;
      schedule_guarded(
          receiver, static_cast<Tick>(grant.grace), [this, receiver] {
            Core& victim = *cores_[receiver];
            if (victim.in_tx && victim.grace_deadline.has_value()) {
              // Expiry: a censored observation (the receiver needed more
              // than the full grace period).
              arbiter_->feedback({/*committed=*/false, victim.granted_grace,
                                  victim.granted_grace, victim.grace_chain});
              abort_core(receiver, AbortReason::kConflictGraceExpired);
            }
          });
    }
    // Stall the requestor until the receiver commits or aborts.
    a.waiting_on = static_cast<int>(receiver);
    ++a.stall_epoch;
    a.stall_start = queue_.now();
    a.self_timeout_stall = false;
    return;
  }

  // Requestor-at-risk flavor: the requestor waits out a grace period of its
  // own choosing, then sacrifices itself if the receiver has not committed.
  if (grant.grace < 1.0) {
    abort_core(requestor, AbortReason::kSelfTimeout);
    return;
  }
  a.waiting_on = static_cast<int>(receiver);
  const std::uint64_t epoch = ++a.stall_epoch;
  a.stall_start = queue_.now();
  a.self_timeout_stall = true;
  a.requested_grace = grant.grace;
  a.grace_chain = context.chain_length;
  schedule_guarded(requestor, static_cast<Tick>(grant.grace),
                   [this, requestor, receiver, epoch] {
                     Core& self = *cores_[requestor];
                     if (self.waiting_on == static_cast<int>(receiver) &&
                         self.stall_epoch == epoch && self.in_tx) {
                       self.waiting_on = -1;
                       self.stats.stall_cycles +=
                           queue_.now() - self.stall_start;
                       arbiter_->feedback({/*committed=*/false,
                                           self.requested_grace,
                                           self.requested_grace,
                                           self.grace_chain});
                       abort_core(requestor, AbortReason::kSelfTimeout);
                     }
                   });
}

bool HtmSystem::arbitrate_fallback_conflict(CoreId requestor,
                                            CoreId receiver) {
  Core& a = *cores_[requestor];
  Core& r = *cores_[receiver];
  ++a.stats.conflicts_as_requestor;
  ++r.stats.conflicts_as_receiver;
  // Assumption (b): at most one grace period at a time — an active deadline
  // already bounds the receiver, so the fallback just retries after it.
  if (!r.grace_deadline.has_value()) {
    // The receiver is always the transaction at risk here (the fallback
    // cannot abort), so the context is pinned to it whatever config_.mode
    // says; the expiry verdict of the grant is ignored for the same reason.
    const core::ConflictContext context =
        make_context_at(receiver, receiver, requestor);
    const conflict::ConflictView view =
        make_view(context, requestor, receiver);
    const conflict::GraceGrant grant = arbiter_->grace_grant(view, r.rng);
    if (grant.grace < 1.0) {
      abort_core(receiver, AbortReason::kNonTxConflict);
      return false;  // cleared on the spot: the access proceeds this tick
    }
    const Tick deadline = queue_.now() + static_cast<Tick>(grant.grace);
    r.grace_deadline = deadline;
    r.granted_grace = grant.grace;
    r.grace_start = queue_.now();
    r.grace_chain = context.chain_length;
    schedule_guarded(
        receiver, static_cast<Tick>(grant.grace), [this, receiver] {
          Core& victim = *cores_[receiver];
          if (victim.in_tx && victim.grace_deadline.has_value()) {
            arbiter_->feedback({/*committed=*/false, victim.granted_grace,
                                victim.granted_grace, victim.grace_chain});
            abort_core(receiver, AbortReason::kNonTxConflict);
          }
        });
  }
  // Retry the fallback access just after the deadline; if the receiver
  // commits earlier the retry simply finds no conflict.
  const Tick resume = *r.grace_deadline >= queue_.now()
                          ? *r.grace_deadline - queue_.now() + 1
                          : 1;
  schedule_guarded(requestor, resume,
                   [this, requestor] { retry_access(requestor); });
  return true;
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

void HtmSystem::commit(CoreId core) {
  schedule_guarded(core, config_.commit_latency, [this, core] {
    Core& c = *cores_[core];
    for (const auto& [line, value] : c.write_buffer) {
      memory_values_[line] = value;
    }
    c.write_buffer.clear();
    c.l1.commit_transaction();
    ++c.stats.commits;
    if (c.fallback) ++c.stats.fallback_commits;
    ++total_commits_;
    const double tx_cycles = static_cast<double>(queue_.now() - c.tx_start);
    committed_tx_cycles_.add(tx_cycles);
    profiler_.record_commit_length(tx_cycles);
    if (c.grace_deadline.has_value()) {
      // Receiver committed inside its grace period: an exact sample of the
      // remaining time D the arbiter was gambling on.
      arbiter_->feedback(
          {/*committed=*/true, c.granted_grace,
           static_cast<double>(queue_.now() - c.grace_start), c.grace_chain});
    }
    c.descriptor.status.store(
        static_cast<std::uint32_t>(conflict::TxStatus::kCommitted),
        std::memory_order_relaxed);
    c.in_tx = false;
    c.fallback = false;
    c.committing = false;
    c.grace_deadline.reset();
    ++c.generation;
    wake_waiters(core, /*receiver_committed=*/true);
    if (total_commits_ < commit_target_) start_next_transaction(core);
  });
}

void HtmSystem::abort_core(CoreId core, AbortReason reason) {
  Core& c = *cores_[core];
  if (!c.in_tx) return;
  ++c.stats.aborts;
  ++c.stats.aborts_by_reason[static_cast<std::size_t>(reason)];
  for (const LineId line : c.l1.transactional_lines()) {
    directory_.remove(line, core);
  }
  c.l1.abort_transaction();
  c.write_buffer.clear();
  c.descriptor.status.store(
      static_cast<std::uint32_t>(conflict::TxStatus::kAborted),
      std::memory_order_relaxed);
  c.in_tx = false;
  c.grace_deadline.reset();
  if (c.waiting_on >= 0) {
    c.stats.stall_cycles += queue_.now() - c.stall_start;
    c.waiting_on = -1;
  }
  ++c.generation;
  ++c.attempt;
  if (config_.max_attempts_before_fallback > 0 &&
      c.attempt >= config_.max_attempts_before_fallback) {
    c.fallback = true;
  }
  wake_waiters(core, /*receiver_committed=*/false);
  // Restart after the abort penalty plus a small constant-window jitter.
  // The jitter stands in for the timing noise of a real machine: without it
  // the deterministic simulator restarts symmetric losers in lockstep and
  // requestor-wins immediate-abort livelocks (the classic pathology of
  // reference [11]).  It is deliberately NOT load-adaptive; full randomized
  // exponential backoff (restart_backoff_shift > 0) is an ablation knob,
  // since backoff is itself a contention manager and masks the effect the
  // paper studies.
  const std::uint32_t shift =
      std::min<std::uint32_t>(c.attempt, config_.restart_backoff_shift);
  const Tick jitter =
      c.rng.uniform_below((config_.abort_penalty << shift) + 1);
  schedule_guarded(core, config_.abort_penalty + jitter,
                   [this, core] { begin_attempt(core); });
}

void HtmSystem::wake_waiters(CoreId core, bool receiver_committed) {
  for (const auto& candidate : cores_) {
    if (candidate->waiting_on != static_cast<int>(core)) continue;
    Core& waiter = *candidate;
    waiter.waiting_on = -1;
    ++waiter.stall_epoch;
    waiter.stats.stall_cycles += queue_.now() - waiter.stall_start;
    if (receiver_committed && waiter.self_timeout_stall) {
      // Requestor-at-risk stall: the waiter chose this grace period and the
      // receiver's commit resolved it — an exact sample of D.  (Waiters
      // stalled behind a receiver's grace get no feedback here: the
      // receiver's own commit-path feedback covers that grant.)
      arbiter_->feedback(
          {/*committed=*/true, waiter.requested_grace,
           static_cast<double>(queue_.now() - waiter.stall_start),
           waiter.grace_chain});
    }
    const CoreId waiter_id = waiter.id;
    schedule_guarded(waiter_id, 1,
                     [this, waiter_id] { retry_access(waiter_id); });
  }
}

// ---------------------------------------------------------------------------
// Run loop and inspection
// ---------------------------------------------------------------------------

HtmStats HtmSystem::run(std::uint64_t target_commits, Tick max_cycles) {
  commit_target_ = target_commits;
  for (CoreId core = 0; core < config_.cores; ++core) {
    // Small deterministic stagger so cores do not lock-step.
    schedule_guarded(core, core, [this, core] { start_next_transaction(core); });
  }
  while (total_commits_ < commit_target_ && queue_.step(max_cycles)) {
  }
  // Drain in-flight fallback attempts: non-transactional effects are applied
  // directly to memory at access time, so stopping mid-attempt would leave
  // memory mutations with no matching counted commit.  Transactional attempts
  // need no draining — their buffered writes are simply discarded.
  const auto fallback_in_flight = [this] {
    return std::any_of(cores_.begin(), cores_.end(),
                       [](const auto& core) { return core->fallback; });
  };
  while (fallback_in_flight() && queue_.step(max_cycles)) {
  }

  HtmStats stats;
  stats.cycles = queue_.now();
  stats.per_core.reserve(cores_.size());
  for (const auto& core : cores_) {
    stats.per_core.push_back(core->stats);
    stats.commits += core->stats.commits;
    stats.aborts += core->stats.aborts;
    stats.conflicts += core->stats.conflicts_as_receiver;
  }
  stats.mean_tx_cycles = committed_tx_cycles_.mean();
  if (noc_.has_value()) stats.noc = noc_->stats();
  if (l2_.has_value()) stats.l2 = l2_->stats();
  return stats;
}

std::uint64_t HtmSystem::memory_value(LineId line) const {
  const auto it = memory_values_.find(line);
  return it == memory_values_.end() ? 0 : it->second;
}

bool HtmSystem::coherence_invariants_hold() const {
  return directory_.invariants_hold();
}

}  // namespace txc::htm
