// txconflict — discrete-event hardware transactional memory simulator.
//
// This is the substitution for the paper's testbed (MIT Graphite with an HTM
// grafted onto its directory MSI protocol; see DESIGN.md §7).  The simulator
// models n cores with private L1 caches carrying transactional bits and a
// shared directory.  Conflicts are detected eagerly on coherence requests
// (Algorithm 1); resolution is requestor-wins or requestor-aborts, and every
// decision point — the transactional conflict events and the
// fallback-lock path — consults a pluggable conflict::ConflictArbiter (a
// plain core::GracePeriodPolicy is wrapped in a GraceArbiter), the exact
// decision the paper studies.  Each core publishes a conflict::TxDescriptor
// so seniority-based arbiters (Karma, Greedy, ...) run here unmodified.
//
// Modeled effects:
//   * latency classes: L1 hit vs remote (directory + L2) round trips,
//     commit and abort-cleanup latencies;
//   * transactional-bit conflicts on read/write coherence requests;
//   * grace periods: the receiver NACKs the requestor until it commits or the
//     deadline fires (requestor-wins), or the requestor self-aborts at the
//     deadline (requestor-aborts);
//   * conflict chains: a stalled requestor can itself be awaited by others;
//     the chain length k is handed to the policy;
//   * waits-for cycle detection: all transactions in a cycle abort
//     (Section 3.2, assumption (c) and reference [2]);
//   * capacity aborts on transactional-line eviction;
//   * non-transactional (fallback) accesses win against conflicting
//     transactions — modelling the lock-free slow path of the paper's
//     stack/queue benchmarks — but the arbiter chooses how much grace a
//     conflicting receiver gets before it is aborted;
//   * value semantics: reads/writes/RMWs are buffered per transaction and
//     applied atomically at commit, so tests can verify atomicity and
//     isolation end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "conflict/arbiter.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/l2.hpp"
#include "noc/mesh.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace txc::htm {

using mem::CoreId;
using mem::LineId;
using sim::Tick;

// ---------------------------------------------------------------------------
// Transactions as programs
// ---------------------------------------------------------------------------

struct TxOp {
  enum class Kind : std::uint8_t {
    kRead,   // transactional load
    kWrite,  // transactional store of `value`
    kRmw,    // transactional load; add `value`; store
    kWork,   // `cycles` of local computation
  };
  Kind kind = Kind::kWork;
  LineId line = 0;
  std::uint64_t value = 0;   // store value (kWrite) or delta (kRmw)
  std::uint64_t cycles = 0;  // kWork only
};

using Transaction = std::vector<TxOp>;

/// Per-thread transaction source.  `next_transaction` is called after each
/// commit; a re-executed (aborted) attempt replays the same ops.
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual Transaction next_transaction(CoreId core,
                                                     sim::Rng& rng) = 0;
  /// Non-transactional think time between transactions, in cycles.
  [[nodiscard]] virtual std::uint64_t think_time(CoreId /*core*/,
                                                 sim::Rng& /*rng*/) {
    return 0;
  }
  [[nodiscard]] virtual std::string name() const = 0;
};

// ---------------------------------------------------------------------------
// Configuration and statistics
// ---------------------------------------------------------------------------

struct HtmConfig {
  std::uint32_t cores = 8;
  mem::CacheConfig l1{};

  // Latency model (cycles).
  std::uint64_t l1_hit_latency = 1;
  std::uint64_t remote_latency = 20;  // directory/L2 round trip
  std::uint64_t commit_latency = 4;
  std::uint64_t abort_penalty = 80;  // rollback/cleanup before restart
  std::uint64_t memory_latency = 60;  // added on an L2 miss (l2 enabled only)

  /// When set, remote accesses route through a 2D mesh NoC: the flat
  /// remote_latency is replaced by a distance-dependent round trip between
  /// the core's tile and the line's home tile (plus invalidation traffic).
  /// The mesh is sized up automatically if it holds fewer tiles than cores.
  std::optional<noc::MeshConfig> noc;

  /// When set, a shared banked L2 sits behind the directory: L2 hits cost the
  /// remote round trip, misses add memory_latency, and inclusive-hierarchy
  /// evictions back-invalidate L1 copies (aborting transactional holders).
  std::optional<mem::L2Config> l2;

  /// Fixed cleanup component of the policy's abort cost B; the elapsed
  /// running time of the receiver is added per Section 4 footnote 1.
  double abort_cost_cleanup = 80.0;

  core::ResolutionMode mode = core::ResolutionMode::kRequestorWins;
  std::shared_ptr<const core::GracePeriodPolicy> policy;

  /// Conflict arbitration.  When set, every conflict decision point — the
  /// transactional conflict events and the fallback-lock path — consults
  /// this substrate-agnostic arbiter (the same instance can simultaneously
  /// serve TL2 and NOrec; see bench/cross_substrate_arbiter.cpp).  When
  /// unset, `policy` is wrapped in a conflict::GraceArbiter pinned to
  /// `mode`, which reproduces the historical policy-driven behavior
  /// exactly.  `mode` additionally keeps choosing the cycle-breaking flavor
  /// and which core's RNG stream feeds randomized decisions.
  std::shared_ptr<const conflict::ConflictArbiter> arbiter;

  /// After this many aborts of one transaction, execute it on the
  /// non-transactional slow path (0 disables the fallback).
  std::uint32_t max_attempts_before_fallback = 0;

  /// 0 (default, the paper's baseline): restart exactly abort_penalty cycles
  /// after an abort.  > 0: add randomized exponential backoff capped at this
  /// many doublings — an ablation knob, since backoff is itself a contention
  /// manager and masks the effect the paper studies.
  std::uint32_t restart_backoff_shift = 0;

  /// Feed the committed-length profiler's mean to the policy as mean_hint.
  bool use_profiler_mean = false;

  /// Feed the at-risk transaction's (approximate) remaining isolated running
  /// time to the policy as remaining_hint.  Only OraclePolicy consumes it;
  /// enables offline-optimum comparison runs.
  bool oracle_hints = false;

  /// Record every grace-period decision point as a ConflictRecord (B, k, D)
  /// retrievable via conflict_trace() — the raw material for offline policy
  /// replay (bench/trace_replay): evaluating all strategies on the *same*
  /// conflict sequence a real run produced.
  bool record_conflicts = false;

  /// Ablation knob for DESIGN.md's load-bearing decision 1: acquire
  /// exclusive ownership of written lines *eagerly* at execution time
  /// instead of lazily in the commit phase.  Concurrent read-modify-write
  /// pairs then deadlock on upgrade and die as cycle aborts — the measured
  /// reason the simulator (like the paper's Graphite HTM) is lazy.
  bool eager_writes = false;

  std::uint64_t seed = 1;
};

enum class AbortReason : std::uint8_t {
  kConflictGraceExpired,  // receiver aborted after its grace period (RW)
  kConflictImmediate,     // receiver aborted with zero grace (RW)
  kSelfTimeout,           // requestor aborted itself (RA)
  kNonTxConflict,         // clashed with a non-transactional access
  kCapacity,              // transactional line evicted from the L1
  kCycle,                 // waits-for cycle detected
  kCapacityL2,            // transactional L1 copy back-invalidated by the L2
};
inline constexpr std::size_t kAbortReasonCount = 7;

[[nodiscard]] constexpr const char* to_string(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::kConflictGraceExpired: return "grace-expired";
    case AbortReason::kConflictImmediate: return "immediate";
    case AbortReason::kSelfTimeout: return "self-timeout";
    case AbortReason::kNonTxConflict: return "non-tx";
    case AbortReason::kCapacity: return "capacity-l1";
    case AbortReason::kCycle: return "cycle";
    case AbortReason::kCapacityL2: return "capacity-l2";
  }
  return "?";
}

/// One grace-period decision point, as the policy saw it, plus the ground
/// truth the simulator knows: the at-risk transaction's isolated remaining
/// time D at that instant.
struct ConflictRecord {
  double abort_cost = 0.0;  // B
  int chain_length = 2;     // k
  double remaining = 0.0;   // D
};

struct CoreStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t aborts_by_reason[kAbortReasonCount] = {};
  std::uint64_t conflicts_as_receiver = 0;
  std::uint64_t conflicts_as_requestor = 0;
  std::uint64_t fallback_commits = 0;
  std::uint64_t stall_cycles = 0;  // cycles spent waiting on a receiver
};

struct HtmStats {
  std::vector<CoreStats> per_core;
  Tick cycles = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t conflicts = 0;
  double mean_tx_cycles = 0.0;  // committed attempts only
  std::optional<noc::NocStats> noc;  // present when HtmConfig::noc is set
  std::optional<mem::L2Stats> l2;    // present when HtmConfig::l2 is set

  /// Paper-style throughput: operations per second at the given clock.
  [[nodiscard]] double ops_per_second(double ghz = 1.0) const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(commits) /
                             (static_cast<double>(cycles) / (ghz * 1e9));
  }
  [[nodiscard]] double abort_rate() const noexcept {
    const auto attempts = commits + aborts;
    return attempts == 0 ? 0.0
                         : static_cast<double>(aborts) /
                               static_cast<double>(attempts);
  }
};

// ---------------------------------------------------------------------------
// The system
// ---------------------------------------------------------------------------

class HtmSystem {
 public:
  HtmSystem(HtmConfig config, std::shared_ptr<Workload> workload);
  ~HtmSystem();

  HtmSystem(const HtmSystem&) = delete;
  HtmSystem& operator=(const HtmSystem&) = delete;

  /// Run until `target_commits` transactions committed system-wide or
  /// `max_cycles` elapsed, whichever first.
  HtmStats run(std::uint64_t target_commits, Tick max_cycles = 500'000'000);

  /// Committed value of a memory line (post-run inspection for tests).
  [[nodiscard]] std::uint64_t memory_value(LineId line) const;

  /// Directory invariants (tests).
  [[nodiscard]] bool coherence_invariants_hold() const;

  /// Recorded grace-decision points (requires config.record_conflicts).
  [[nodiscard]] const std::vector<ConflictRecord>& conflict_trace()
      const noexcept {
    return conflict_trace_;
  }

  [[nodiscard]] const HtmConfig& config() const noexcept { return config_; }

 private:
  struct Core;

  // Scheduling helpers -------------------------------------------------------
  void schedule_guarded(CoreId core, Tick delay, std::function<void()> fn);
  void start_next_transaction(CoreId core);
  void begin_attempt(CoreId core);
  void step(CoreId core);
  void finish_op(CoreId core);
  void access(CoreId core);
  void perform_access(CoreId core, const TxOp& op);
  void commit(CoreId core);
  void abort_core(CoreId core, AbortReason reason);
  void wake_waiters(CoreId core, bool receiver_committed = false);
  void retry_access(CoreId core);

  // Memory-hierarchy timing ---------------------------------------------------
  /// Home tile of a line's directory/L2 slice (NoC mode).
  [[nodiscard]] noc::TileId home_tile(LineId line) const noexcept;
  /// Latency of a remote (L1-miss) access: flat remote_latency, or the NoC
  /// round trip to the home tile; plus memory_latency on an L2 miss.  Also
  /// performs the L2 access and back-invalidates on inclusive eviction —
  /// which may abort transactional holders, including `core` itself (the
  /// caller must check and bail out).
  [[nodiscard]] Tick remote_access_cost(CoreId core, LineId line);
  /// One invalidation round trip from the line's home tile to a holder (NoC
  /// mode only): accounts the traffic and returns the ack arrival time so the
  /// writer can extend its critical path to the last ack.
  [[nodiscard]] Tick invalidation_round_trip(LineId line, CoreId holder);

  // Conflict machinery -------------------------------------------------------
  /// Transactional holders of `line` that conflict with the given access.
  [[nodiscard]] std::vector<CoreId> conflicting_receivers(CoreId requestor,
                                                          LineId line,
                                                          bool is_write) const;
  void handle_conflict(CoreId requestor, CoreId receiver);
  /// Arbitrate one non-transactional (fallback) access against a
  /// conflicting transactional receiver: the fallback always wins
  /// eventually (it is the slow path's progress guarantee), the arbiter
  /// only chooses how much grace the receiver gets first.  Returns true
  /// when the access was deferred (a retry is scheduled).
  [[nodiscard]] bool arbitrate_fallback_conflict(CoreId requestor,
                                                 CoreId receiver);
  [[nodiscard]] int chain_length(CoreId requestor, CoreId receiver) const;
  [[nodiscard]] bool creates_cycle(CoreId requestor, CoreId receiver) const;
  /// The at-risk transaction's local view of the conflict: abort cost B
  /// (elapsed + cleanup), chain length k, attempt count, optional hints.
  [[nodiscard]] core::ConflictContext make_context_at(CoreId at_risk,
                                                      CoreId receiver,
                                                      CoreId requestor) const;
  /// The requestor's ConflictView over `context`: both cores' descriptors
  /// plus the simulator's ability to abort receivers remotely.
  [[nodiscard]] conflict::ConflictView make_view(
      const core::ConflictContext& context, CoreId requestor,
      CoreId receiver) const;
  /// Remaining cycles of the core's current attempt if it ran in isolation
  /// from here on (oracle hint; accesses approximated as L1 hits).
  [[nodiscard]] double ideal_remaining_cycles(CoreId core) const;

  HtmConfig config_;
  /// The resolved arbiter (config_.arbiter, or the GraceArbiter wrap of
  /// config_.policy).
  std::shared_ptr<const conflict::ConflictArbiter> arbiter_;
  /// Cached arbiter_->needs_seniority(): gates the per-access work credit
  /// and the per-transaction seniority stamp.
  bool needs_seniority_ = false;
  std::shared_ptr<Workload> workload_;
  sim::EventQueue queue_;
  mem::Directory directory_;
  std::optional<noc::MeshNoc> noc_;
  std::optional<mem::SharedL2> l2_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unordered_map<LineId, std::uint64_t> memory_values_;
  core::MeanProfiler profiler_;
  /// Instrumentation only (written from the const make_context_at path).
  mutable std::vector<ConflictRecord> conflict_trace_;
  sim::RunningStats committed_tx_cycles_;
  std::uint64_t total_commits_ = 0;
  std::uint64_t commit_target_ = 0;
  /// Seniority ticket for the per-core descriptors (Timestamp/Greedy).
  std::uint64_t start_ticket_ = 0;
};

}  // namespace txc::htm
