// txconflict — lock-free Treiber stack.
//
// Section 8.2: "The stack and the queue use lock-free designs as 'slow path'
// backups."  This is that design: a Treiber stack over a fixed node pool,
// made ABA-safe by packing a 32-bit generation tag next to the 32-bit node
// index in a single 64-bit CAS word.  Nodes are recycled through a lock-free
// free list using the same tagging scheme, so the structure is self-contained
// (no hazard pointers or external reclaimer needed).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace txc::lockfree {

/// Packed pointer: high 32 bits generation tag, low 32 bits node index
/// (0xFFFFFFFF = null).
class TaggedIndex {
 public:
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;

  constexpr TaggedIndex() noexcept : raw_(pack(0, kNull)) {}
  constexpr TaggedIndex(std::uint32_t tag, std::uint32_t index) noexcept
      : raw_(pack(tag, index)) {}
  constexpr explicit TaggedIndex(std::uint64_t raw) noexcept : raw_(raw) {}

  [[nodiscard]] constexpr std::uint32_t tag() const noexcept {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }
  [[nodiscard]] constexpr std::uint32_t index() const noexcept {
    return static_cast<std::uint32_t>(raw_);
  }
  [[nodiscard]] constexpr bool null() const noexcept {
    return index() == kNull;
  }
  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return raw_; }

  [[nodiscard]] constexpr TaggedIndex advanced_to(std::uint32_t index) const noexcept {
    return TaggedIndex{tag() + 1, index};
  }

 private:
  static constexpr std::uint64_t pack(std::uint32_t tag, std::uint32_t index) noexcept {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }
  std::uint64_t raw_;
};

/// Bounded lock-free stack of uint64 values.
class TreiberStack {
 public:
  explicit TreiberStack(std::size_t capacity);

  /// Push a value; returns false if the node pool is exhausted.
  bool push(std::uint64_t value);

  /// Pop the most recently pushed value, or nullopt when empty.
  std::optional<std::uint64_t> pop();

  [[nodiscard]] bool empty() const noexcept {
    return TaggedIndex{head_.load(std::memory_order_acquire)}.null();
  }

 private:
  struct Node {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint32_t> next{TaggedIndex::kNull};
  };

  std::uint32_t allocate();
  void release(std::uint32_t index);

  std::vector<Node> nodes_;
  std::atomic<std::uint64_t> head_;
  std::atomic<std::uint64_t> free_list_;
};

}  // namespace txc::lockfree
