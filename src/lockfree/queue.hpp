// txconflict — lock-free Michael–Scott queue over a fixed node pool with
// tagged indices (the queue counterpart of the Treiber "slow path" design;
// see stack.hpp for the tagging scheme).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "lockfree/stack.hpp"  // TaggedIndex

namespace txc::lockfree {

/// Bounded lock-free FIFO queue of uint64 values.
class MichaelScottQueue {
 public:
  explicit MichaelScottQueue(std::size_t capacity);

  /// Enqueue a value; returns false if the node pool is exhausted — the
  /// bounded-capacity failure contract (allocate() reporting kNull), a
  /// clean status result rather than a throw, matching kv::OpStatus'
  /// shard-full shape and TxPool's nullptr-on-exhaustion.  The caller may
  /// simply retry: capacity frees up as concurrent dequeues release nodes.
  bool enqueue(std::uint64_t value);

  /// Dequeue the oldest value, or nullopt when empty.
  std::optional<std::uint64_t> dequeue();

  [[nodiscard]] bool empty() const noexcept {
    // The emptiness probe reads two words (head, then the dummy's next) and
    // must revalidate head between them: a concurrent dequeue can retire
    // the dummy node and recycle it through the free list, so the `next` we
    // loaded may belong to the node's NEXT life — stale kNull on a
    // non-empty queue (or vice versa).  The tagged re-load catches any
    // intervening dequeue, exactly like the head revalidation in dequeue().
    while (true) {
      const TaggedIndex head{head_.load(std::memory_order_acquire)};
      const std::uint32_t next =
          nodes_[head.index()].next.load(std::memory_order_acquire);
      if (head_.load(std::memory_order_acquire) != head.raw()) continue;
      return TaggedIndex{0, next}.null();
    }
  }

 private:
  struct Node {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint32_t> next{TaggedIndex::kNull};
  };

  std::uint32_t allocate();
  void release(std::uint32_t index);

  std::vector<Node> nodes_;
  std::atomic<std::uint64_t> head_;  // points at the current dummy node
  std::atomic<std::uint64_t> tail_;
  std::atomic<std::uint64_t> free_list_;
};

}  // namespace txc::lockfree
