#include "lockfree/queue.hpp"

namespace txc::lockfree {

MichaelScottQueue::MichaelScottQueue(std::size_t capacity)
    : nodes_(capacity + 1),  // +1 for the initial dummy
      head_(TaggedIndex{0, 0}.raw()),
      tail_(TaggedIndex{0, 0}.raw()),
      free_list_(TaggedIndex{0, capacity == 0 ? TaggedIndex::kNull : 1}.raw()) {
  nodes_[0].next.store(TaggedIndex::kNull, std::memory_order_relaxed);
  for (std::size_t i = 1; i + 1 < nodes_.size(); ++i) {
    nodes_[i].next.store(static_cast<std::uint32_t>(i + 1),
                         std::memory_order_relaxed);
  }
  if (nodes_.size() > 1) {
    nodes_.back().next.store(TaggedIndex::kNull, std::memory_order_relaxed);
  }
}

// Node-pool exhaustion contract (audited alongside TxPool's): allocate()
// reports kNull when the free list is empty and enqueue() forwards that as
// a plain `false` — no throw, no spin.  Exhaustion here is exact, not
// grace-delayed: release() returns a node at the moment of the dequeue
// that retired it, so `false` means the queue genuinely held `capacity`
// values at some point during the call.
std::uint32_t MichaelScottQueue::allocate() {
  while (true) {
    const TaggedIndex head{free_list_.load(std::memory_order_acquire)};
    if (head.null()) return TaggedIndex::kNull;
    const std::uint32_t next =
        nodes_[head.index()].next.load(std::memory_order_acquire);
    std::uint64_t expected = head.raw();
    if (free_list_.compare_exchange_weak(expected,
                                         head.advanced_to(next).raw(),
                                         std::memory_order_acq_rel)) {
      return head.index();
    }
  }
}

void MichaelScottQueue::release(std::uint32_t index) {
  while (true) {
    const TaggedIndex head{free_list_.load(std::memory_order_acquire)};
    nodes_[index].next.store(head.index(), std::memory_order_release);
    std::uint64_t expected = head.raw();
    if (free_list_.compare_exchange_weak(expected,
                                         head.advanced_to(index).raw(),
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
}

bool MichaelScottQueue::enqueue(std::uint64_t value) {
  const std::uint32_t node = allocate();
  if (node == TaggedIndex::kNull) return false;
  nodes_[node].value.store(value, std::memory_order_relaxed);
  nodes_[node].next.store(TaggedIndex::kNull, std::memory_order_release);
  while (true) {
    const TaggedIndex tail{tail_.load(std::memory_order_acquire)};
    const std::uint32_t next =
        nodes_[tail.index()].next.load(std::memory_order_acquire);
    if (tail.raw() != tail_.load(std::memory_order_acquire)) continue;
    if (next == TaggedIndex::kNull) {
      std::uint32_t expected_next = TaggedIndex::kNull;
      if (nodes_[tail.index()].next.compare_exchange_weak(
              expected_next, node, std::memory_order_acq_rel)) {
        // Swing the tail; failure is benign (someone else advanced it).
        std::uint64_t expected_tail = tail.raw();
        tail_.compare_exchange_strong(expected_tail,
                                      tail.advanced_to(node).raw(),
                                      std::memory_order_acq_rel);
        return true;
      }
    } else {
      // Tail is lagging: help advance it.
      std::uint64_t expected_tail = tail.raw();
      tail_.compare_exchange_strong(expected_tail,
                                    tail.advanced_to(next).raw(),
                                    std::memory_order_acq_rel);
    }
  }
}

std::optional<std::uint64_t> MichaelScottQueue::dequeue() {
  while (true) {
    const TaggedIndex head{head_.load(std::memory_order_acquire)};
    const TaggedIndex tail{tail_.load(std::memory_order_acquire)};
    const std::uint32_t next =
        nodes_[head.index()].next.load(std::memory_order_acquire);
    if (head.raw() != head_.load(std::memory_order_acquire)) continue;
    if (next == TaggedIndex::kNull) return std::nullopt;  // empty
    if (head.index() == tail.index()) {
      // Tail lagging behind a non-empty queue: help.
      std::uint64_t expected_tail = tail.raw();
      tail_.compare_exchange_strong(expected_tail,
                                    tail.advanced_to(next).raw(),
                                    std::memory_order_acq_rel);
      continue;
    }
    const std::uint64_t value = nodes_[next].value.load(std::memory_order_acquire);
    std::uint64_t expected_head = head.raw();
    if (head_.compare_exchange_weak(expected_head,
                                    head.advanced_to(next).raw(),
                                    std::memory_order_acq_rel)) {
      release(head.index());  // the old dummy is recycled
      return value;
    }
  }
}

}  // namespace txc::lockfree
