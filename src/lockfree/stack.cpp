#include "lockfree/stack.hpp"

namespace txc::lockfree {

TreiberStack::TreiberStack(std::size_t capacity)
    : nodes_(capacity),
      head_(TaggedIndex{}.raw()),
      free_list_(TaggedIndex{0, capacity == 0 ? TaggedIndex::kNull : 0}.raw()) {
  // Thread every node onto the free list.
  for (std::size_t i = 0; i + 1 < capacity; ++i) {
    nodes_[i].next.store(static_cast<std::uint32_t>(i + 1),
                         std::memory_order_relaxed);
  }
  if (capacity > 0) {
    nodes_[capacity - 1].next.store(TaggedIndex::kNull,
                                    std::memory_order_relaxed);
  }
}

std::uint32_t TreiberStack::allocate() {
  while (true) {
    const TaggedIndex head{free_list_.load(std::memory_order_acquire)};
    if (head.null()) return TaggedIndex::kNull;
    const std::uint32_t next =
        nodes_[head.index()].next.load(std::memory_order_acquire);
    std::uint64_t expected = head.raw();
    if (free_list_.compare_exchange_weak(expected,
                                         head.advanced_to(next).raw(),
                                         std::memory_order_acq_rel)) {
      return head.index();
    }
  }
}

void TreiberStack::release(std::uint32_t index) {
  while (true) {
    const TaggedIndex head{free_list_.load(std::memory_order_acquire)};
    nodes_[index].next.store(head.index(), std::memory_order_release);
    std::uint64_t expected = head.raw();
    if (free_list_.compare_exchange_weak(expected,
                                         head.advanced_to(index).raw(),
                                         std::memory_order_acq_rel)) {
      return;
    }
  }
}

bool TreiberStack::push(std::uint64_t value) {
  const std::uint32_t node = allocate();
  if (node == TaggedIndex::kNull) return false;
  nodes_[node].value.store(value, std::memory_order_relaxed);
  while (true) {
    const TaggedIndex head{head_.load(std::memory_order_acquire)};
    nodes_[node].next.store(head.index(), std::memory_order_release);
    std::uint64_t expected = head.raw();
    if (head_.compare_exchange_weak(expected, head.advanced_to(node).raw(),
                                    std::memory_order_acq_rel)) {
      return true;
    }
  }
}

std::optional<std::uint64_t> TreiberStack::pop() {
  while (true) {
    const TaggedIndex head{head_.load(std::memory_order_acquire)};
    if (head.null()) return std::nullopt;
    const std::uint32_t next =
        nodes_[head.index()].next.load(std::memory_order_acquire);
    const std::uint64_t value =
        nodes_[head.index()].value.load(std::memory_order_relaxed);
    std::uint64_t expected = head.raw();
    if (head_.compare_exchange_weak(expected, head.advanced_to(next).raw(),
                                    std::memory_order_acq_rel)) {
      release(head.index());
      return value;
    }
  }
}

}  // namespace txc::lockfree
