// txconflict — bounded MPMC ring for KV service requests.
//
// The classic Vyukov bounded queue: each slot carries a sequence number that
// encodes both occupancy and lap, so producers and consumers claim slots
// with one CAS each and never touch a shared lock.  Bounded on purpose —
// the service is driven open-loop (requests arrive on a schedule regardless
// of service rate), so when a shard falls behind the queue must push back
// by *rejecting*, and the generator counts the drop; an unbounded queue
// would instead hide overload inside unbounded memory growth and ever-worse
// latency.  try_push/try_pop never block.
//
// Distinct from lockfree/queue.hpp (a uint64-element MPSC study piece) and
// stm/containers.hpp's TxQueue (a transactional ring): this one carries
// arbitrary trivially-copyable structs (kv::Request) on plain atomics,
// outside any transaction — it is service plumbing, not STM workload.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace txc::kv {

template <typename T>
class BoundedMpmcQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are copied outside any synchronization of T itself");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit BoundedMpmcQueue(std::size_t capacity)
      : mask_(round_up_pow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(mask_ + 1) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// False when the queue is full (the open-loop generator's drop signal).
  bool try_push(const T& item) noexcept {
    std::size_t ticket = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[ticket & mask_];
      const std::size_t sequence =
          slot.sequence.load(std::memory_order_acquire);
      const auto delta = static_cast<std::intptr_t>(sequence) -
                         static_cast<std::intptr_t>(ticket);
      if (delta == 0) {
        if (tail_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          slot.item = item;
          slot.sequence.store(ticket + 1, std::memory_order_release);
          return true;
        }
        // CAS lost: `ticket` was reloaded, retry with the new value.
      } else if (delta < 0) {
        return false;  // slot still holds last lap's element: full
      } else {
        ticket = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the queue is empty.
  bool try_pop(T& out) noexcept {
    std::size_t ticket = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[ticket & mask_];
      const std::size_t sequence =
          slot.sequence.load(std::memory_order_acquire);
      const auto delta = static_cast<std::intptr_t>(sequence) -
                         static_cast<std::intptr_t>(ticket + 1);
      if (delta == 0) {
        if (head_.compare_exchange_weak(ticket, ticket + 1,
                                        std::memory_order_relaxed)) {
          out = slot.item;
          slot.sequence.store(ticket + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (delta < 0) {
        return false;  // slot not yet published: empty
      } else {
        ticket = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy size estimate for monitoring only.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Slot {
    std::atomic<std::size_t> sequence{0};
    T item{};
  };

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::size_t> tail_{0};  // producers claim here
  alignas(64) std::atomic<std::size_t> head_{0};  // consumers claim here
};

}  // namespace txc::kv
