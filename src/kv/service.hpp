// txconflict — the sharded KV *service*: per-shard workers draining request
// queues into batched transactions.
//
// Data flow (one column per shard):
//
//   clients ──submit()──► BoundedMpmcQueue[s] ──► worker thread s
//                              │                      │ drain ≤ K requests
//                              │ full? reject         ▼
//                              ▼               one atomically():
//                        drop counted            apply op 1..K
//                                                commit ── completion stamp
//                                                      │
//                                                      ▼
//                                       LatencyHistogram[s] (enqueue→commit)
//
// submit() routes a request to the home shard of its primary key and stamps
// the enqueue tick; the shard's worker drains up to `max_batch` requests
// and applies them in queue order as maximal same-mode *segments*: a run of
// consecutive kGet requests becomes one declared-read-only snapshot
// transaction (atomically_read — no read set, no descriptor, no
// arbitration), and everything between such runs becomes one instrumented
// write transaction (atomically), each segment amortizing begin/commit
// (and, on NOrec, the global-seqlock acquisition) over its requests.  On a
// read-heavy mix this moves most of the service's traffic off the
// arbitrated path entirely: a get segment cannot conflict with anything —
// it blocks no writer and aborts no one.  A cross-shard request (the
// two-key swap) still runs on its primary key's worker — the transaction
// simply spans the second shard's bucket region, which the single-substrate
// store makes safe (see kv/store.hpp).  Segment order is queue order, so
// per-client program order within a shard is preserved; each segment
// commits at its own serialization point (requests are independent client
// ops — nothing ever promised the whole drain was one atomic unit).
//
// Completion time = segment-commit tick − enqueue tick (core::cycle_now
// units): queueing delay plus every aborted/restarted attempt of the
// request's own segment — exactly the latency an open-loop client
// observes, which is what the kv_service bench reports as p50/p99/p999 per
// arbiter.
//
// The service is templated over the substrate and written only against the
// unified API (TxContext/ReadTxContext, atomically/atomically_read,
// read/write, stats), so one definition serves TL2 and NOrec under the
// entire arbiter roster.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/profiler.hpp"
#include "kv/queue.hpp"
#include "kv/store.hpp"

namespace txc::kv {

enum class OpKind : std::uint8_t {
  kGet,
  kPut,
  kRmwAdd,
  kSwap,  // two keys, possibly two shards
};

/// Completion slot: the worker stores kDone | result; a zero-initialized
/// slot reads "pending".  Results are 32-bit (kv::Value), so the flag bit
/// never collides.  kFound distinguishes get-hit from get-miss.
inline constexpr std::uint64_t kDone = std::uint64_t{1} << 63;
inline constexpr std::uint64_t kFound = std::uint64_t{1} << 62;

struct Request {
  OpKind op = OpKind::kGet;
  Key key_a = 0;
  Key key_b = 0;    // kSwap only
  Value value = 0;  // kPut: stored value; kRmwAdd: delta
  std::uint64_t enqueue_tick = 0;  // stamped by submit()
  /// Optional: where to publish the result (nullptr = fire and forget).
  /// Must stay valid until the slot reads nonzero.
  std::atomic<std::uint64_t>* response = nullptr;
};

struct ServiceStats {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> rejected{0};  // queue full at submit()
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> batches{0};  // drain cycles (≥1 segment each)
  /// Segments served by the snapshot fast path (runs of kGet →
  /// atomically_read) vs. instrumented write transactions.  On a read-heavy
  /// mix read_segments ≫ write_segments is the service-level proof that
  /// most traffic left the arbitrated path.
  std::atomic<std::uint64_t> read_segments{0};
  std::atomic<std::uint64_t> write_segments{0};
  std::atomic<std::uint64_t> shard_full{0};  // ops refused by open addressing
};

template <typename Substrate>
class KvService {
 public:
  using Store = ShardedKvStore<Substrate>;
  using TxContext = typename Substrate::TxContext;
  using ReadTxContext = typename Substrate::ReadTxContext;

  /// Hard bound on Config::max_batch (stack array per worker).
  static constexpr std::size_t kMaxBatchCap = 64;

  struct Config {
    typename Store::Config store;
    std::size_t queue_capacity = 4096;  // per shard
    std::size_t max_batch = 16;         // ops per transaction, clamped to cap
  };

  template <typename Arbitration>
  KvService(const Config& config, Arbitration&& arbitration)
      : store_(config.store, std::forward<Arbitration>(arbitration)),
        max_batch_(config.max_batch == 0
                       ? 1
                       : (config.max_batch > kMaxBatchCap ? kMaxBatchCap
                                                          : config.max_batch)),
        latency_(store_.shards()) {
    queues_.reserve(store_.shards());
    for (std::size_t s = 0; s < store_.shards(); ++s) {
      queues_.push_back(
          std::make_unique<BoundedMpmcQueue<Request>>(config.queue_capacity));
    }
  }

  ~KvService() { stop(); }
  KvService(const KvService&) = delete;
  KvService& operator=(const KvService&) = delete;

  /// Spawn one worker per shard.  Idempotent.
  void start() {
    if (!workers_.empty()) return;
    stop_requested_.store(false, std::memory_order_relaxed);
    workers_.reserve(store_.shards());
    for (std::size_t s = 0; s < store_.shards(); ++s) {
      workers_.emplace_back([this, s] { worker_loop(s); });
    }
  }

  /// Drain every queue, then join the workers.  Idempotent.
  void stop() {
    if (workers_.empty()) return;
    stop_requested_.store(true, std::memory_order_release);
    for (auto& worker : workers_) worker.join();
    workers_.clear();
  }

  /// Route `request` to its primary key's home shard, stamping the enqueue
  /// tick.  False = queue full (open-loop overload): the request is dropped
  /// and counted, never blocked on.
  bool submit(Request request) {
    request.enqueue_tick = core::cycle_now();
    const std::size_t shard = store_.shard_of(request.key_a);
    if (!queues_[shard]->try_push(request)) {
      stats_.rejected.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    stats_.submitted.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] Store& store() noexcept { return store_; }
  [[nodiscard]] const ServiceStats& service_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const core::LatencyHistogram& shard_latency(
      std::size_t shard) const noexcept {
    return latency_[shard];
  }

  /// Fold all shards' completion-time histograms into `out` (post-join).
  void merge_latency(core::LatencyHistogram& out) const noexcept {
    for (const auto& histogram : latency_) out.merge(histogram);
  }

 private:
  void worker_loop(std::size_t shard) {
    BoundedMpmcQueue<Request>& queue = *queues_[shard];
    std::array<Request, kMaxBatchCap> batch;
    std::array<std::uint64_t, kMaxBatchCap> results{};
    for (;;) {
      std::size_t drained = 0;
      while (drained < max_batch_ && queue.try_pop(batch[drained])) {
        ++drained;
      }
      if (drained == 0) {
        if (stop_requested_.load(std::memory_order_acquire)) {
          // Re-probe once after observing stop so a submit() that raced the
          // flag is still served (submitters must have stopped by now).
          if (!queue.try_pop(batch[0])) return;
          drained = 1;
        } else {
          std::this_thread::yield();
          continue;
        }
      }
      // Apply in queue order as maximal same-mode segments: runs of kGet
      // ride the snapshot fast path, everything else the instrumented one.
      std::size_t begin = 0;
      while (begin < drained) {
        const bool read_segment = batch[begin].op == OpKind::kGet;
        std::size_t end = begin + 1;
        while (end < drained &&
               (batch[end].op == OpKind::kGet) == read_segment) {
          ++end;
        }
        if (read_segment) {
          store_.substrate().atomically_read([&](ReadTxContext& tx) {
            for (std::size_t i = begin; i < end; ++i) {
              const auto value = store_.get(tx, batch[i].key_a);
              results[i] =
                  value.has_value() ? (kDone | kFound | *value) : kDone;
            }
          });
          stats_.read_segments.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::uint64_t full_ops = 0;
          store_.substrate().atomically([&](TxContext& tx) {
            full_ops = 0;  // the body may re-run after an abort
            for (std::size_t i = begin; i < end; ++i) {
              results[i] = apply(tx, batch[i], full_ops);
            }
          });
          stats_.write_segments.fetch_add(1, std::memory_order_relaxed);
          if (full_ops != 0) {
            stats_.shard_full.fetch_add(full_ops, std::memory_order_relaxed);
          }
        }
        // Stamp completion per segment: a request's latency covers its own
        // segment's commit, not later segments in the same drain.
        const std::uint64_t commit_tick = core::cycle_now();
        for (std::size_t i = begin; i < end; ++i) {
          latency_[shard].record(commit_tick - batch[i].enqueue_tick);
          if (batch[i].response != nullptr) {
            batch[i].response->store(results[i], std::memory_order_release);
          }
        }
        begin = end;
      }
      stats_.completed.fetch_add(drained, std::memory_order_relaxed);
      stats_.batches.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Apply one request inside the batch's transaction; returns the packed
  /// response-slot value (kDone | [kFound] | result).
  std::uint64_t apply(TxContext& tx, const Request& request,
                      std::uint64_t& full_ops) {
    switch (request.op) {
      case OpKind::kGet: {
        const auto value = store_.get(tx, request.key_a);
        return value.has_value() ? (kDone | kFound | *value) : kDone;
      }
      case OpKind::kPut: {
        if (store_.put(tx, request.key_a, request.value) != OpStatus::kOk) {
          ++full_ops;
        }
        return kDone;
      }
      case OpKind::kRmwAdd: {
        Value out = 0;
        if (store_.rmw_add(tx, request.key_a, request.value, out) !=
            OpStatus::kOk) {
          ++full_ops;
          return kDone;
        }
        return kDone | kFound | out;
      }
      case OpKind::kSwap: {
        if (store_.swap(tx, request.key_a, request.key_b) != OpStatus::kOk) {
          ++full_ops;
        }
        return kDone;
      }
    }
    return kDone;  // unreachable
  }

  Store store_;
  std::size_t max_batch_;
  std::vector<std::unique_ptr<BoundedMpmcQueue<Request>>> queues_;
  std::vector<core::LatencyHistogram> latency_;
  ServiceStats stats_;
  std::atomic<bool> stop_requested_{false};
  std::vector<std::thread> workers_;
};

}  // namespace txc::kv
