// txconflict — sharded transactional key-value store, generic over the STM
// substrate.
//
// The store generalizes the TxKvStore sketch from examples/norec_kv.cpp into
// a subsystem: a fixed-capacity open-addressing hash table whose buckets are
// transactional cells, partitioned into N shards.  A shard is a *data
// partition* (a contiguous bucket region keys hash into) — in the service
// layer (kv/service.hpp) it additionally gets a dedicated worker thread and
// request queue.  All shards share ONE substrate instance: transactions are
// flat (no nesting within or across substrates — see TxBuffersScope), so a
// cross-shard operation like the two-key swap must be a single transaction
// spanning both shards' bucket regions, which only works when both regions
// live under the same clock/locks.  For TL2 the striped write-locks keep
// shard commits independent anyway; for NOrec every commit serializes on the
// one seqlock — by design, that is the wait point the conflict arbiters
// differentiate on.
//
// The store is templated over the substrate (`Substrate` = stm::Stm or
// stm::Norec) and written entirely against the unified API surface:
// `typename Substrate::TxContext` / `Substrate::ReadTxContext`,
// atomically(TxOptions, body) / atomically_read(body), read/write, stats().
// One table definition, both STMs, the whole arbiter roster.  Read-only
// operations — get_sync, value_sum_sync, size_sync, scan, range — run on
// the snapshot fast path: a read transaction that accrues no read set,
// publishes no descriptor, and never arbitrates, which is what makes the
// full-table scans affordable (a TL2 read-set for a whole table would be
// thousands of entries validated at commit; the snapshot context validates
// each bucket in place instead).
//
// Layout and semantics:
//   - Keys are nonzero uint32; a bucket packs (key << 32) | value in one
//     cell, so 0 is "empty" and a single transactional read captures both.
//   - shard_of(key) routes by a hash of the key's high mix bits; the probe
//     sequence is linear probing confined to the key's shard region, so a
//     shard's residency never spills into a neighbor.
//   - Transactional ops take a TxContext& and compose: batch several per
//     atomically() to amortize begin/commit (the service layer does), or
//     use the *_sync convenience wrappers that open a transaction per op.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "stm/options.hpp"
#include "stm/tl2.hpp"

namespace txc::kv {

using Key = std::uint32_t;    // nonzero
using Value = std::uint32_t;

/// Result of a transactional op that may find the target shard full.  Open
/// addressing at fixed capacity cannot insert past residency = capacity;
/// callers size shards for their key universe (the conformance tests audit
/// the full path explicitly).
enum class OpStatus : std::uint8_t {
  kOk,
  kShardFull,
};

template <typename Substrate>
class ShardedKvStore {
 public:
  using TxContext = typename Substrate::TxContext;
  using ReadTxContext = typename Substrate::ReadTxContext;

  /// A resident key/value pair, as returned by scan() and range().
  struct Entry {
    Key key = 0;
    Value value = 0;
    friend bool operator==(const Entry& a, const Entry& b) noexcept {
      return a.key == b.key && a.value == b.value;
    }
  };

  struct Config {
    std::size_t shards = 4;
    /// Buckets per shard, rounded up to a power of two.
    std::size_t capacity_per_shard = 1024;
    /// Register each shard's bucket region with the substrate
    /// (stm::RegionSpec) so lock placement is computed from bucket indices
    /// instead of pointer hashes.  On TL2 each shard gets a dedicated
    /// stripe table sized to its capacity — distinct buckets provably never
    /// share a stripe (collision shell 1), making the KV hot path
    /// false-conflict-free by construction; NOrec accepts and ignores the
    /// registration.  Off exists for A/B measurement
    /// (bench/stripe_geometry.cpp), not for production use.
    bool register_regions = true;
  };

  /// `arbitration` is whatever the substrate's one-argument constructor
  /// accepts: a GracePeriodPolicy or a ConflictArbiter (TL2 additionally
  /// accepts a stripe count via its defaulted second parameter, which this
  /// generic surface leaves at its default).
  template <typename Arbitration>
  ShardedKvStore(const Config& config, Arbitration&& arbitration)
      : substrate_(std::forward<Arbitration>(arbitration)),
        shards_(config.shards == 0 ? 1 : config.shards),
        capacity_(round_up_pow2(config.capacity_per_shard)),
        buckets_(shards_ * capacity_) {
    if (config.register_regions) {
      // One region per shard (not one big region): shard boundaries are the
      // natural placement unit — the service layer binds a worker thread
      // per shard, so per-shard tables also keep each worker's lock-word
      // traffic on its own NUMA-interleaved table.
      for (std::size_t shard = 0; shard < shards_; ++shard) {
        stm::RegionSpec spec;
        spec.base = &buckets_[shard * capacity_];
        spec.elements = capacity_;
        spec.stride_bytes = sizeof(stm::Cell);
        substrate_.register_region(spec);
      }
    }
  }

  [[nodiscard]] Substrate& substrate() noexcept { return substrate_; }
  [[nodiscard]] const stm::StmStats& stats() const noexcept {
    return substrate_.stats();
  }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t capacity_per_shard() const noexcept {
    return capacity_;
  }

  /// Home shard for `key` — mixes before reducing so dense key ranges
  /// spread instead of striping.
  [[nodiscard]] std::size_t shard_of(Key key) const noexcept {
    return (mix(key) >> 8) % shards_;
  }

  /// Debug/bench hook: the bucket `key` currently resides in (or would be
  /// inserted into), probed NON-transactionally — meaningful only while no
  /// transactions are in flight.  Exists so placement experiments can pair
  /// it with Stm::debug_stripe_of to build hash-aliased key sets; nullptr
  /// when the key's shard is full.
  [[nodiscard]] const stm::Cell* debug_bucket_of(Key key) const noexcept {
    const std::size_t base = shard_of(key) * capacity_;
    std::size_t offset = mix(key) & (capacity_ - 1);
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const std::size_t slot = base + offset;
      const std::uint64_t packed = Substrate::read_committed(buckets_[slot]);
      if (packed == 0 || unpack_key(packed) == key) return &buckets_[slot];
      offset = (offset + 1) & (capacity_ - 1);
    }
    return nullptr;
  }

  // -- Transactional operations (compose freely within one atomically) -----

  /// Read the value under `key`, or nullopt if absent.  Generic over the
  /// context: pass a TxContext inside atomically() (the read participates
  /// in validation) or a ReadTxContext inside atomically_read() (validated
  /// in place, snapshot fast path).
  template <typename Ctx>
  [[nodiscard]] std::optional<Value> get(Ctx& tx, Key key) {
    const Probe probe = find_slot(tx, key);
    if (!probe.found) return std::nullopt;
    return unpack_value(probe.packed);
  }

  /// Insert or overwrite `key` -> `value`.
  OpStatus put(TxContext& tx, Key key, Value value) {
    const Probe probe = find_slot(tx, key);
    if (probe.slot == kNoSlot) return OpStatus::kShardFull;
    tx.write(buckets_[probe.slot], pack(key, value));
    return OpStatus::kOk;
  }

  /// Read-modify-write: add `delta` to the value under `key` (inserting
  /// with value `delta` when absent); returns the new value through `out`.
  OpStatus rmw_add(TxContext& tx, Key key, Value delta, Value& out) {
    const Probe probe = find_slot(tx, key);
    if (probe.slot == kNoSlot) return OpStatus::kShardFull;
    const Value next = (probe.found ? unpack_value(probe.packed) : 0) + delta;
    tx.write(buckets_[probe.slot], pack(key, next));
    out = next;
    return OpStatus::kOk;
  }

  /// Atomically exchange the values under two keys (absent reads as 0 and
  /// inserts).  The keys may live in different shards: this is the op that
  /// makes the single-substrate design load-bearing — the transaction's
  /// footprint spans both shard regions.
  OpStatus swap(TxContext& tx, Key a, Key b) {
    const Probe probe_a = find_slot(tx, a);
    const Probe probe_b = find_slot(tx, b);
    if (probe_a.slot == kNoSlot || probe_b.slot == kNoSlot) {
      return OpStatus::kShardFull;
    }
    const Value value_a = probe_a.found ? unpack_value(probe_a.packed) : 0;
    const Value value_b = probe_b.found ? unpack_value(probe_b.packed) : 0;
    tx.write(buckets_[probe_a.slot], pack(a, value_b));
    tx.write(buckets_[probe_b.slot], pack(b, value_a));
    return OpStatus::kOk;
  }

  // -- One-transaction-per-op convenience wrappers -------------------------

  /// Point lookup on the snapshot fast path (no read set, no arbitration).
  [[nodiscard]] std::optional<Value> get_sync(Key key) {
    std::optional<Value> result;
    substrate_.atomically_read(
        [&](ReadTxContext& tx) { result = get(tx, key); });
    return result;
  }

  OpStatus put_sync(Key key, Value value) {
    OpStatus status = OpStatus::kOk;
    substrate_.atomically(
        [&](TxContext& tx) { status = put(tx, key, value); });
    return status;
  }

  OpStatus swap_sync(Key a, Key b) {
    OpStatus status = OpStatus::kOk;
    substrate_.atomically([&](TxContext& tx) { status = swap(tx, a, b); });
    return status;
  }

  /// Sum of all resident values in one consistent snapshot — the
  /// conservation audit the conformance tests and example lean on (two-key
  /// swaps preserve it exactly).  Full-table scan on the snapshot fast
  /// path: no read-set accrual, per-bucket in-place validation.
  [[nodiscard]] std::uint64_t value_sum_sync() {
    std::uint64_t sum = 0;
    substrate_.atomically_read([&](ReadTxContext& tx) {
      sum = 0;  // the body may re-run after a snapshot restart
      for (auto& bucket : buckets_) {
        const std::uint64_t packed = tx.read(bucket);
        if (packed != 0) sum += unpack_value(packed);
      }
    });
    return sum;
  }

  /// Resident key count in one consistent snapshot.
  [[nodiscard]] std::uint64_t size_sync() {
    std::uint64_t count = 0;
    substrate_.atomically_read([&](ReadTxContext& tx) {
      count = 0;
      for (auto& bucket : buckets_) {
        if (tx.read(bucket) != 0) ++count;
      }
    });
    return count;
  }

  // -- Snapshot scans (the ops the read fast path unlocks) -----------------

  /// Collect every resident pair into `out`, all from ONE consistent
  /// snapshot (a pair present in the result coexisted with every other
  /// pair in it).  Bucket order, not key order.  `out` is cleared and
  /// refilled; its capacity is reused, so a caller scanning in a loop
  /// allocates only until the vector has grown to residency.
  void scan(std::vector<Entry>& out) {
    substrate_.atomically_read([&](ReadTxContext& tx) {
      out.clear();  // the body may re-run after a snapshot restart
      for (auto& bucket : buckets_) {
        const std::uint64_t packed = tx.read(bucket);
        if (packed != 0) {
          out.push_back(Entry{unpack_key(packed), unpack_value(packed)});
        }
      }
    });
  }

  /// Collect the resident pairs with lo <= key <= hi, from one consistent
  /// snapshot, sorted by key.  The table is hashed, so a range query is a
  /// full-table scan plus filter — exactly the shape that needed the
  /// snapshot fast path to be viable (an instrumented read set over every
  /// bucket would dwarf the result).
  void range(Key lo, Key hi, std::vector<Entry>& out) {
    substrate_.atomically_read([&](ReadTxContext& tx) {
      out.clear();
      for (auto& bucket : buckets_) {
        const std::uint64_t packed = tx.read(bucket);
        if (packed == 0) continue;
        const Key key = unpack_key(packed);
        if (lo <= key && key <= hi) {
          out.push_back(Entry{key, unpack_value(packed)});
        }
      }
    });
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Probe {
    std::size_t slot = kNoSlot;  // key's slot or first free; kNoSlot: full
    bool found = false;          // slot holds the key (vs. empty/insertable)
    std::uint64_t packed = 0;    // slot contents when found
  };

  static std::uint64_t pack(Key key, Value value) noexcept {
    return (static_cast<std::uint64_t>(key) << 32) | value;
  }
  static Key unpack_key(std::uint64_t packed) noexcept {
    return static_cast<Key>(packed >> 32);
  }
  static Value unpack_value(std::uint64_t packed) noexcept {
    return static_cast<Value>(packed & 0xFFFFFFFFu);
  }

  static std::uint32_t mix(Key key) noexcept {
    return key * 2654435761u;  // Fibonacci hashing
  }

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// Linear probing confined to the key's shard region, inside the
  /// transaction: the probe reads participate in validation, so a racing
  /// insert along the probe path aborts (and retries) us.  Generic over the
  /// context (TxContext or ReadTxContext) like get().
  template <typename Ctx>
  Probe find_slot(Ctx& tx, Key key) {
    assert(key != 0 && "kv keys are nonzero (0 marks an empty bucket)");
    const std::size_t base = shard_of(key) * capacity_;
    std::size_t offset = mix(key) & (capacity_ - 1);
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const std::size_t slot = base + offset;
      const std::uint64_t packed = tx.read(buckets_[slot]);
      if (packed == 0) return Probe{slot, /*found=*/false, 0};
      if (unpack_key(packed) == key) return Probe{slot, /*found=*/true, packed};
      offset = (offset + 1) & (capacity_ - 1);
    }
    return Probe{};  // shard full
  }

  Substrate substrate_;
  std::size_t shards_;
  std::size_t capacity_;  // per shard, power of two
  std::vector<stm::Cell> buckets_;
};

}  // namespace txc::kv
