// txconflict — sharded transactional key-value store, generic over the STM
// substrate.
//
// The store generalizes the TxKvStore sketch from examples/norec_kv.cpp into
// a subsystem: a fixed-capacity open-addressing hash table whose buckets are
// transactional cells, partitioned into N shards.  A shard is a *data
// partition* (a contiguous bucket region keys hash into) — in the service
// layer (kv/service.hpp) it additionally gets a dedicated worker thread and
// request queue.  All shards share ONE substrate instance: transactions are
// flat (no nesting within or across substrates — see TxBuffersScope), so a
// cross-shard operation like the two-key swap must be a single transaction
// spanning both shards' bucket regions, which only works when both regions
// live under the same clock/locks.  For TL2 the striped write-locks keep
// shard commits independent anyway; for NOrec every commit serializes on the
// one seqlock — by design, that is the wait point the conflict arbiters
// differentiate on.
//
// The store is templated over the substrate (`Substrate` = stm::Stm or
// stm::Norec) and written entirely against the unified API surface:
// `typename Substrate::TxContext`, atomically(TxOptions, body), read/write,
// stats().  One table definition, both STMs, the whole arbiter roster.
//
// Layout and semantics:
//   - Keys are nonzero uint32; a bucket packs (key << 32) | value in one
//     cell, so 0 is "empty" and a single transactional read captures both.
//   - shard_of(key) routes by a hash of the key's high mix bits; the probe
//     sequence is linear probing confined to the key's shard region, so a
//     shard's residency never spills into a neighbor.
//   - Transactional ops take a TxContext& and compose: batch several per
//     atomically() to amortize begin/commit (the service layer does), or
//     use the *_sync convenience wrappers that open a transaction per op.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "stm/options.hpp"
#include "stm/tl2.hpp"

namespace txc::kv {

using Key = std::uint32_t;    // nonzero
using Value = std::uint32_t;

/// Result of a transactional op that may find the target shard full.  Open
/// addressing at fixed capacity cannot insert past residency = capacity;
/// callers size shards for their key universe (the conformance tests audit
/// the full path explicitly).
enum class OpStatus : std::uint8_t {
  kOk,
  kShardFull,
};

template <typename Substrate>
class ShardedKvStore {
 public:
  using TxContext = typename Substrate::TxContext;

  struct Config {
    std::size_t shards = 4;
    /// Buckets per shard, rounded up to a power of two.
    std::size_t capacity_per_shard = 1024;
  };

  /// `arbitration` is whatever the substrate's one-argument constructor
  /// accepts: a GracePeriodPolicy or a ConflictArbiter (TL2 additionally
  /// accepts a stripe count via its defaulted second parameter, which this
  /// generic surface leaves at its default).
  template <typename Arbitration>
  ShardedKvStore(const Config& config, Arbitration&& arbitration)
      : substrate_(std::forward<Arbitration>(arbitration)),
        shards_(config.shards == 0 ? 1 : config.shards),
        capacity_(round_up_pow2(config.capacity_per_shard)),
        buckets_(shards_ * capacity_) {}

  [[nodiscard]] Substrate& substrate() noexcept { return substrate_; }
  [[nodiscard]] const stm::StmStats& stats() const noexcept {
    return substrate_.stats();
  }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t capacity_per_shard() const noexcept {
    return capacity_;
  }

  /// Home shard for `key` — mixes before reducing so dense key ranges
  /// spread instead of striping.
  [[nodiscard]] std::size_t shard_of(Key key) const noexcept {
    return (mix(key) >> 8) % shards_;
  }

  // -- Transactional operations (compose freely within one atomically) -----

  /// Read the value under `key`, or nullopt if absent.
  [[nodiscard]] std::optional<Value> get(TxContext& tx, Key key) {
    const Probe probe = find_slot(tx, key);
    if (!probe.found) return std::nullopt;
    return unpack_value(probe.packed);
  }

  /// Insert or overwrite `key` -> `value`.
  OpStatus put(TxContext& tx, Key key, Value value) {
    const Probe probe = find_slot(tx, key);
    if (probe.slot == kNoSlot) return OpStatus::kShardFull;
    tx.write(buckets_[probe.slot], pack(key, value));
    return OpStatus::kOk;
  }

  /// Read-modify-write: add `delta` to the value under `key` (inserting
  /// with value `delta` when absent); returns the new value through `out`.
  OpStatus rmw_add(TxContext& tx, Key key, Value delta, Value& out) {
    const Probe probe = find_slot(tx, key);
    if (probe.slot == kNoSlot) return OpStatus::kShardFull;
    const Value next = (probe.found ? unpack_value(probe.packed) : 0) + delta;
    tx.write(buckets_[probe.slot], pack(key, next));
    out = next;
    return OpStatus::kOk;
  }

  /// Atomically exchange the values under two keys (absent reads as 0 and
  /// inserts).  The keys may live in different shards: this is the op that
  /// makes the single-substrate design load-bearing — the transaction's
  /// footprint spans both shard regions.
  OpStatus swap(TxContext& tx, Key a, Key b) {
    const Probe probe_a = find_slot(tx, a);
    const Probe probe_b = find_slot(tx, b);
    if (probe_a.slot == kNoSlot || probe_b.slot == kNoSlot) {
      return OpStatus::kShardFull;
    }
    const Value value_a = probe_a.found ? unpack_value(probe_a.packed) : 0;
    const Value value_b = probe_b.found ? unpack_value(probe_b.packed) : 0;
    tx.write(buckets_[probe_a.slot], pack(a, value_b));
    tx.write(buckets_[probe_b.slot], pack(b, value_a));
    return OpStatus::kOk;
  }

  // -- One-transaction-per-op convenience wrappers -------------------------

  [[nodiscard]] std::optional<Value> get_sync(Key key) {
    std::optional<Value> result;
    substrate_.atomically(stm::kReadOnlyTx,
                          [&](TxContext& tx) { result = get(tx, key); });
    return result;
  }

  OpStatus put_sync(Key key, Value value) {
    OpStatus status = OpStatus::kOk;
    substrate_.atomically(
        [&](TxContext& tx) { status = put(tx, key, value); });
    return status;
  }

  OpStatus swap_sync(Key a, Key b) {
    OpStatus status = OpStatus::kOk;
    substrate_.atomically([&](TxContext& tx) { status = swap(tx, a, b); });
    return status;
  }

  /// Sum of all resident values in one read-only snapshot — the
  /// conservation audit the conformance tests and example lean on (two-key
  /// swaps preserve it exactly).
  [[nodiscard]] std::uint64_t value_sum_sync() {
    std::uint64_t sum = 0;
    substrate_.atomically(stm::kReadOnlyTx, [&](TxContext& tx) {
      sum = 0;  // the body may re-run after an abort
      for (auto& bucket : buckets_) {
        const std::uint64_t packed = tx.read(bucket);
        if (packed != 0) sum += unpack_value(packed);
      }
    });
    return sum;
  }

  /// Resident key count in one read-only snapshot.
  [[nodiscard]] std::uint64_t size_sync() {
    std::uint64_t count = 0;
    substrate_.atomically(stm::kReadOnlyTx, [&](TxContext& tx) {
      count = 0;
      for (auto& bucket : buckets_) {
        if (tx.read(bucket) != 0) ++count;
      }
    });
    return count;
  }

 private:
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  struct Probe {
    std::size_t slot = kNoSlot;  // key's slot or first free; kNoSlot: full
    bool found = false;          // slot holds the key (vs. empty/insertable)
    std::uint64_t packed = 0;    // slot contents when found
  };

  static std::uint64_t pack(Key key, Value value) noexcept {
    return (static_cast<std::uint64_t>(key) << 32) | value;
  }
  static Key unpack_key(std::uint64_t packed) noexcept {
    return static_cast<Key>(packed >> 32);
  }
  static Value unpack_value(std::uint64_t packed) noexcept {
    return static_cast<Value>(packed & 0xFFFFFFFFu);
  }

  static std::uint32_t mix(Key key) noexcept {
    return key * 2654435761u;  // Fibonacci hashing
  }

  static std::size_t round_up_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// Linear probing confined to the key's shard region, inside the
  /// transaction: the probe reads participate in validation, so a racing
  /// insert along the probe path aborts (and retries) us.
  Probe find_slot(TxContext& tx, Key key) {
    assert(key != 0 && "kv keys are nonzero (0 marks an empty bucket)");
    const std::size_t base = shard_of(key) * capacity_;
    std::size_t offset = mix(key) & (capacity_ - 1);
    for (std::size_t probes = 0; probes < capacity_; ++probes) {
      const std::size_t slot = base + offset;
      const std::uint64_t packed = tx.read(buckets_[slot]);
      if (packed == 0) return Probe{slot, /*found=*/false, 0};
      if (unpack_key(packed) == key) return Probe{slot, /*found=*/true, packed};
      offset = (offset + 1) & (capacity_ - 1);
    }
    return Probe{};  // shard full
  }

  Substrate substrate_;
  std::size_t shards_;
  std::size_t capacity_;  // per shard, power of two
  std::vector<stm::Cell> buckets_;
};

}  // namespace txc::kv
