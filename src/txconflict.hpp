// txconflict — umbrella header for the public API.
//
// One include for downstream users:
//
//   #include "txconflict.hpp"
//
//   auto policy = txc::core::make_policy(txc::core::StrategyKind::kRandWins);
//   txc::htm::HtmConfig config;
//   config.policy = policy;
//   txc::htm::HtmSystem sim{config, std::make_shared<txc::ds::TxAppWorkload>()};
//   auto stats = sim.run(10'000);
//
// Layering (each header is independently includable):
//   core      grace-period policies, optimal densities, cost model,
//             estimators, numeric minimax solver
//   conflict  substrate-agnostic conflict arbitration: descriptors, the
//             ConflictArbiter interface, the canonical contention managers,
//             the grace-period adapter, the adaptive learner, the
//             fault-injection hook seam
//   adversary scheduler-adversarial fault injection: preemption adversary,
//             cpuset oversubscription helpers, arbiter probes
//   sim       discrete-event kernel, RNG, statistics
//   workload  length distributions, Zipf, synthetic + adversarial games,
//             trace replay
//   mem/noc   cache, directory, shared L2, mesh NoC
//   htm       the multicore HTM simulator
//   ds        benchmark workloads for the simulator
//   stm       TL2 + NOrec software TMs, shared TxOptions, containers
//   kv        sharded transactional key-value store + batching service,
//             generic over the STM substrate
//   sync      spin locks and locked baseline containers
//   lockfree  Treiber stack, Michael–Scott queue
//
// The pre-PR-4 contention-manager spellings (stm/cm.hpp) are gone: the shim
// was deleted after a deprecation cycle.  docs/ARCHITECTURE.md keeps the
// old-name -> conflict/ migration table as a historical record.
#pragma once

#include "adversary/preempt.hpp"
#include "conflict/adaptive.hpp"
#include "conflict/arbiter.hpp"
#include "conflict/descriptor.hpp"
#include "conflict/grace.hpp"
#include "conflict/injection.hpp"
#include "conflict/managers.hpp"
#include "core/cost_model.hpp"
#include "core/densities.hpp"
#include "core/estimators.hpp"
#include "core/numeric_opt.hpp"
#include "core/policy.hpp"
#include "core/profiler.hpp"
#include "ds/extended_workloads.hpp"
#include "ds/workloads.hpp"
#include "htm/htm.hpp"
#include "kv/queue.hpp"
#include "kv/service.hpp"
#include "kv/store.hpp"
#include "lockfree/queue.hpp"
#include "lockfree/stack.hpp"
#include "mem/cache.hpp"
#include "mem/directory.hpp"
#include "mem/l2.hpp"
#include "noc/mesh.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "stm/containers.hpp"
#include "stm/norec.hpp"
#include "stm/options.hpp"
#include "stm/tl2.hpp"
#include "stm/tx_buffers.hpp"
#include "sync/locked_containers.hpp"
#include "sync/locks.hpp"
#include "workload/adversary.hpp"
#include "workload/distributions.hpp"
#include "workload/replay.hpp"
#include "workload/synthetic.hpp"
#include "workload/zipf.hpp"
