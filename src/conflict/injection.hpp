// txconflict — scheduler-adversary fault-injection hooks.
//
// The substrates' conflict protocols are written against a cooperative
// scheduler: a committer acquires its locks, writes back, and releases in a
// handful of cycles, so the windows the kill protocol guards are nanoseconds
// wide.  A *real* scheduler preempts threads at arbitrary points — including
// inside those windows — and that is exactly the regime where arbitration
// policies diverge in the tail (Alistarh–Censor-Hillel–Shavit's "practically
// wait-free" argument, PAPERS.md).  This header is the seam that lets the
// adversary harness (src/adversary) force the worst case deterministically:
// a handful of named hook points at the protocol's most vulnerable moments,
// behind a gate that costs one relaxed-ish load when nothing is installed.
//
// Hook points (see each call site for the exact protocol state):
//
//   kSpinWait          drive_spin_site(): a waiter is about to consult the
//                      arbiter for one more conflict round.
//   kTl2CommitLocked   TL2 try_commit: every write-set stripe is locked and
//                      the holder's descriptor is published — the widest
//                      moment a preempted holder stalls every conflicting
//                      waiter.
//   kNorecOddWindow    NOrec try_commit: the global seqlock is odd and the
//                      committer's descriptor is published, kill window
//                      still open.  A stall here blocks every reader and
//                      committer of the whole substrate.
//
// Gate design.  The hooks sit on contended paths only (never the
// uncontended fast path), but substrates must not pay for adversaries they
// do not run:
//
//   * Compile gate: defining TXC_NO_ADVERSARY_HOOKS compiles maybe_hook()
//     to nothing (the CMake option TXC_ADVERSARY_HOOKS=OFF does this
//     globally); install/uninstall still link, they just never fire.
//   * Runtime gate: with hooks compiled in, maybe_hook() is a single
//     acquire load of a global slot that is null unless an adversary is
//     installed.  No branch history pollution beyond the one
//     null-check.
//
// Teardown safety: uninstall_injection_hook() must not race an in-flight
// on_hook() call on another thread.  maybe_hook() brackets the virtual call
// with an in-flight counter, and uninstall spins until that counter drains
// — so once uninstall returns, destroying the hook object is safe.  The
// counter is only touched after the null-check, keeping the disabled path
// at one load.
#pragma once

#include <atomic>
#include <cstdint>

namespace txc::conflict {

/// Where in a conflict protocol a hook fires.
enum class HookPoint : std::uint32_t {
  kSpinWait = 0,      // waiter: about to run one arbiter decide round
  kTl2CommitLocked,   // TL2 committer: write locks held, kill window open
  kNorecOddWindow,    // NOrec committer: seqlock odd, descriptor published
};

inline constexpr std::size_t kHookPointCount = 3;

/// A fault injector.  on_hook() runs on the *victim* thread, inside the
/// protocol window named by `point`; implementations stall, yield, or do
/// nothing, but must not touch the substrate that called them (the victim
/// may hold its locks) and must not allocate (the call sites sit on the
/// zero-allocation conflict paths).
class InjectionHook {
 public:
  virtual ~InjectionHook() = default;
  virtual void on_hook(HookPoint point) noexcept = 0;
};

namespace detail {

struct HookGate {
  std::atomic<InjectionHook*> slot{nullptr};
  std::atomic<std::uint64_t> in_flight{0};
};

inline HookGate& hook_gate() noexcept {
  static HookGate gate;
  return gate;
}

}  // namespace detail

/// Whether the hook call sites were compiled in at all.
[[nodiscard]] constexpr bool injection_hooks_compiled() noexcept {
#if defined(TXC_NO_ADVERSARY_HOOKS)
  return false;
#else
  return true;
#endif
}

/// Install `hook` as the process-wide injector (nullptr uninstalls, but
/// prefer uninstall_injection_hook for its quiescence guarantee).  Returns
/// the previously-installed hook; adversaries assert it was null — hooks do
/// not stack.
inline InjectionHook* exchange_injection_hook(InjectionHook* hook) noexcept {
  return detail::hook_gate().slot.exchange(hook, std::memory_order_acq_rel);
}

/// Uninstall and *quiesce*: returns only after every in-flight on_hook()
/// call has left the gate, so the caller may destroy the hook object.
inline void uninstall_injection_hook() noexcept {
  detail::HookGate& gate = detail::hook_gate();
  gate.slot.store(nullptr, std::memory_order_release);
  while (gate.in_flight.load(std::memory_order_acquire) != 0) {
  }
}

/// The hook call sites' entry point.  One acquire load when no adversary is
/// installed; compiled to nothing under TXC_NO_ADVERSARY_HOOKS.
inline void maybe_hook([[maybe_unused]] HookPoint point) noexcept {
#if !defined(TXC_NO_ADVERSARY_HOOKS)
  detail::HookGate& gate = detail::hook_gate();
  if (gate.slot.load(std::memory_order_acquire) == nullptr) return;
  gate.in_flight.fetch_add(1, std::memory_order_acq_rel);
  // Re-probe under the in-flight count: the slot may have been cleared
  // between the fast-path check and the bracket.
  if (InjectionHook* hook = gate.slot.load(std::memory_order_acquire)) {
    hook->on_hook(point);
  }
  gate.in_flight.fetch_sub(1, std::memory_order_acq_rel);
#endif
}

}  // namespace txc::conflict
