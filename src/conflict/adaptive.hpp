// txconflict — the adaptive conflict arbiter.
//
// AdaptiveArbiter is the layer's native learner: it estimates the mean
// remaining time D of conflicting transactions online from outcome feedback
// (exact samples when the enemy commits within the wait, right-censored
// samples when the budget expires — core::CensoredMeanEstimator keeps the
// censoring from biasing the mean down) and switches regime per the paper's
// threshold analysis.  Waiting D costs w·D where w is the number of delayed
// transactions per unit time (k-1 under requestor-wins, 1 under
// requestor-aborts), aborting costs B, so:
//
//   learned mean m with  w·m >  B   →  immediate-abort regime (Delta = 0);
//   otherwise                       →  grace-period regime, Delta =
//                                      min(headroom·m, B/w) — tail headroom
//                                      over the mean, capped at the point
//                                      where waiting is certainly dominated.
//
// Until min_samples observations arrive it bootstraps in the grace regime
// with initial_mean, mirroring AdaptiveTunedPolicy's bootstrap delay.
// Unlike that policy (which assumed the simulator's single thread), the
// estimator here is guarded by a tiny spinlock so one instance can serve
// every thread of every substrate at once; the lock is uncontended off the
// conflict path and never allocates.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "conflict/arbiter.hpp"
#include "core/estimators.hpp"
#include "core/policy.hpp"

namespace txc::conflict {

class AdaptiveArbiter final : public BudgetedArbiter {
 public:
  struct Params {
    double alpha = 0.05;           // EWMA weight per observation
    double initial_mean = 128.0;   // bootstrap estimate of D before feedback
    std::size_t min_samples = 32;  // feedback needed before trusting m
    /// Tail headroom over the learned mean in the grace regime (a mean-sized
    /// budget censors half the observations; 2x keeps the feedback stream
    /// informative).
    double headroom = 2.0;
  };

  /// Default-constructs with Params{} (defined out of line: a nested class's
  /// default member initializers cannot be referenced inside the enclosing
  /// class definition).
  AdaptiveArbiter();
  explicit AdaptiveArbiter(
      Params params,
      core::ResolutionMode mode =
          core::ResolutionMode::kRequestorAborts) noexcept
      : params_(params),
        mode_(mode),
        estimator_(params.alpha, params.initial_mean) {}

  void feedback(const core::ConflictOutcome& outcome) const noexcept override;
  [[nodiscard]] std::string name() const override { return "ADAPTIVE"; }

  /// Current learned mean of the remaining-time distribution (tests/benches).
  [[nodiscard]] double learned_mean() const noexcept;
  [[nodiscard]] std::size_t feedback_samples() const noexcept;
  /// Whether a conflict with abort cost B and chain length k would be
  /// resolved immediately under the current estimate (tests).
  [[nodiscard]] bool in_immediate_regime(double abort_cost,
                                         int chain_length) const noexcept;

 protected:
  /// The per-conflict budget under the current regime (0 in the
  /// immediate-abort regime).
  [[nodiscard]] double budget(const ConflictView& view,
                              sim::Rng& rng) const override;
  [[nodiscard]] core::ResolutionMode flavor(
      const ConflictView&) const override {
    return mode_;
  }

 private:
  /// Cost of one unit of waiting relative to the abort cost, per the
  /// resolution flavor: k-1 transactions stall under requestor-wins, one
  /// under requestor-aborts.
  [[nodiscard]] double wait_weight(const ConflictView& view) const noexcept {
    return mode_ == core::ResolutionMode::kRequestorWins
               ? static_cast<double>(view.context.chain_length - 1 > 0
                                         ? view.context.chain_length - 1
                                         : 1)
               : 1.0;
  }

  Params params_;
  core::ResolutionMode mode_;
  /// Spinlock-guarded learning state: arbiters are shared const across every
  /// thread of every substrate, so unlike AdaptiveTunedPolicy (simulator-
  /// only, single-threaded) the estimator must be synchronized.
  mutable std::atomic_flag estimator_lock_ = ATOMIC_FLAG_INIT;
  mutable core::CensoredMeanEstimator estimator_;
};

}  // namespace txc::conflict
