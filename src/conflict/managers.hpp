// txconflict — the canonical contention managers as conflict arbiters.
//
// The paper positions its grace-period policies against the STM contention-
// manager literature: "contention managers (for instance in software TM) are
// usually assumed to have global knowledge about the set of running
// transactions... by contrast, in our setting, decisions are entirely local"
// (Section 1, Implications).  To make that comparison concrete this module
// implements the canonical managers of Scherer & Scott (PODC 2005) — Polite,
// Karma, Timestamp, Greedy, Polka — against the substrate-agnostic
// ConflictArbiter interface, so the same instances run on TL2 write-lock
// conflicts, NOrec's commit seqlock, and the HTM simulator's conflict
// events.
//
// Global knowledge reaches a manager through the descriptors in its
// ConflictView.  A substrate that publishes none (NOrec's seqlock holder is
// anonymous) degrades every manager to polite waiting: with no enemy to
// weigh or kill, the only sensible local move is to wait for the lock to
// clear — which the seqlock protocol guarantees happens.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "conflict/arbiter.hpp"

namespace txc::conflict {

/// Polite (Scherer & Scott): back off politely for a bounded number of
/// exponentially growing intervals, then get impolite and kill the enemy.
class PoliteCm final : public ConflictArbiter {
 public:
  explicit PoliteCm(std::uint64_t max_rounds = 8) noexcept
      : max_rounds_(max_rounds) {}
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const override;
  [[nodiscard]] std::uint64_t wait_quantum(
      const ConflictView& view) const noexcept override;
  [[nodiscard]] std::string name() const override { return "Polite"; }

 private:
  std::uint64_t max_rounds_;
};

/// Karma: priority = cumulative work done (reads opened), kept across
/// aborts.  Kill the enemy once our priority plus the number of waits
/// exceeds its priority; wait otherwise.
class KarmaCm final : public ConflictArbiter {
 public:
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Karma"; }
};

/// Timestamp: the older transaction (earlier first-attempt start) wins; the
/// younger waits, and after a patience budget sacrifices itself.
class TimestampCm final : public ConflictArbiter {
 public:
  explicit TimestampCm(std::uint64_t patience = 16) noexcept
      : patience_(patience) {}
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Timestamp"; }

 private:
  std::uint64_t patience_;
};

/// Greedy (Guerraoui, Herlihy, Pochon): like Timestamp but never aborts
/// itself — the younger transaction waits until the older finishes or is
/// itself killed; the older kills on sight.  Priority inversion is bounded
/// because timestamps are unique and kept across retries.
class GreedyCm final : public ConflictArbiter {
 public:
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "Greedy"; }
};

/// Polka = Polite + Karma: Karma's priority gap sets how many exponentially
/// growing backoff rounds to tolerate before killing the enemy.
class PolkaCm final : public ConflictArbiter {
 public:
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const override;
  [[nodiscard]] std::uint64_t wait_quantum(
      const ConflictView& view) const noexcept override;
  [[nodiscard]] std::string name() const override { return "Polka"; }
};

/// The classic managers by name, for benches/CLIs (the paper's policies are
/// adapted separately, via GraceArbiter over any core::make_policy result).
enum class CmKind { kPolite, kKarma, kTimestamp, kGreedy, kPolka };

/// Display name of a classic manager ("Polite", "Karma", ...).
[[nodiscard]] const char* to_string(CmKind kind) noexcept;

/// Build a classic manager with its default tuning; the instance is
/// thread-safe and meant to be shared by every thread of every substrate
/// it arbitrates for.
[[nodiscard]] std::shared_ptr<const ConflictArbiter> make_cm(CmKind kind);

}  // namespace txc::conflict
