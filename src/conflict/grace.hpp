// txconflict — the paper's local grace-period decision as a conflict
// arbiter.
//
// GraceArbiter adapts any core::GracePeriodPolicy to the ConflictArbiter
// interface: draw a grace period Delta from the policy once per conflict,
// wait it out in quanta, then apply the expiry verdict.  No global knowledge
// is consulted — exactly the "local, immediate, unchangeable" regime of the
// paper — which is why needs_seniority() is false and the wrapped policy
// only ever sees the ConflictView's context.
//
// The expiry verdict is mode-aware: a requestor-wins policy kills the enemy
// when the grace expires (on substrates that can — TL2's kill protocol, the
// simulator's receiver abort), a requestor-aborts policy sacrifices the
// requestor.  Sites that cannot kill (NOrec) force the self-abort flavor via
// ConflictView::can_abort_enemy.  An explicit mode override pins the flavor
// regardless of the policy's own preference — the simulator uses it so
// HtmConfig::mode keeps meaning what it always meant.
//
// Thread-safety: the arbiter contract is "shared by every thread of every
// substrate", but stateful policies (AdaptiveTunedPolicy) were written for
// the single-threaded simulator and mutate an unsynchronized estimator in
// observe().  The adapter therefore serializes grace_period()/observe()
// behind a tiny spinlock — uncontended off the conflict path, allocation-
// free, and invisible to the simulator (one thread, no contention).
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>

#include "conflict/arbiter.hpp"
#include "core/policy.hpp"

namespace txc::conflict {

class GraceArbiter : public BudgetedArbiter {
 public:
  explicit GraceArbiter(
      std::shared_ptr<const core::GracePeriodPolicy> policy,
      std::optional<core::ResolutionMode> mode_override = std::nullopt) noexcept
      : policy_(std::move(policy)), mode_override_(mode_override) {}

  void feedback(const core::ConflictOutcome& outcome) const noexcept override {
    detail::SpinGuard guard{policy_lock_};
    policy_->observe(outcome);
  }
  [[nodiscard]] std::string name() const override {
    return "Grace(" + policy_->name() + ")";
  }

  [[nodiscard]] const core::GracePeriodPolicy& policy() const noexcept {
    return *policy_;
  }

 protected:
  /// The per-conflict grace budget Delta, drawn from the wrapped policy
  /// (serialized against observe(): stateful policies read the estimator
  /// their feedback mutates).
  [[nodiscard]] double budget(const ConflictView& view,
                              sim::Rng& rng) const override {
    detail::SpinGuard guard{policy_lock_};
    return policy_->grace_period(view.context, rng);
  }
  /// The override, or the policy's per-conflict flavor (HybridPolicy
  /// switches on chain length).
  [[nodiscard]] core::ResolutionMode flavor(
      const ConflictView& view) const override {
    return mode_override_.has_value() ? *mode_override_
                                      : policy_->mode_for(view.context);
  }

 private:
  std::shared_ptr<const core::GracePeriodPolicy> policy_;
  std::optional<core::ResolutionMode> mode_override_;
  mutable std::atomic_flag policy_lock_ = ATOMIC_FLAG_INIT;
};

}  // namespace txc::conflict
