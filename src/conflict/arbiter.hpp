// txconflict — the substrate-agnostic conflict-arbitration interface.
//
// The paper's central claim is that purely *local* grace-period decisions
// compete with global-knowledge contention managers.  Before this layer
// existed each substrate wired conflict resolution differently (TL2 consumed
// GracePeriodPolicy directly, the Scherer–Scott managers were TL2-only, and
// NOrec, the HTM fallback path, and the simulator's conflict events each had
// ad-hoc decision code), so cross-substrate comparisons were not
// apples-to-apples.  A ConflictArbiter is the one decision procedure every
// conflict site consults:
//
//   TL2          a transaction hits a held write-lock stripe
//   NOrec        a transaction finds the global commit seqlock held
//   HTM sim      a coherence request clashes with a transactional line
//   HTM fallback a non-transactional slow-path access clashes with an
//                in-flight transaction
//
// Each site builds a ConflictView (what the decision is allowed to see) and
// asks the arbiter to WAIT one quantum, ABORT SELF, or ABORT THE ENEMY, then
// reports the outcome back through feedback() so adaptive arbiters can learn
// the transaction-length distribution online.  Spin substrates call decide()
// round by round; the discrete-event simulator uses the one-shot grace_grant()
// form (a whole grace budget plus the expiry verdict) so it can schedule a
// single deadline event.  docs/ARCHITECTURE.md ("The conflict-time data
// flow") has the end-to-end diagram.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "conflict/descriptor.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"

namespace txc::conflict {

namespace detail {

/// Scoped spin-guard for arbiters' shared mutable state (learning
/// estimators, stateful wrapped policies).  The critical sections are a few
/// arithmetic operations, so plain test-and-set spinning is cheaper than any
/// blocking primitive and — crucially for the steady-state guarantee —
/// cannot allocate.
class SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) noexcept : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace detail

/// What an arbiter decides at one conflict round.
enum class Decision {
  kWait,        // spin/stall one quantum, then re-evaluate
  kAbortSelf,   // sacrifice the requesting transaction
  kAbortEnemy,  // kill the holder/receiver (sites that cannot — e.g. NOrec's
                // anonymous seqlock holder — map this to kWait)
};

/// Everything an arbiter may see at one conflict round.  Substrates fill in
/// what they know; absent knowledge keeps the defaults (a null descriptor, a
/// chain of 2, ...), and arbiters must degrade gracefully when a field is
/// missing — that is what makes one implementation portable across sites.
struct ConflictView {
  /// Requestor's descriptor (null when the substrate publishes none).
  const TxDescriptor* self = nullptr;
  /// Holder/receiver's descriptor; null when the holder is anonymous (NOrec)
  /// or released between detection and inspection.
  const TxDescriptor* enemy = nullptr;
  /// Consecutive kWait rounds already spent on this conflict.
  std::uint64_t waits_so_far = 0;
  /// Caller-owned per-conflict scratch, initialized to a negative value when
  /// the conflict is first detected.  Randomized arbiters use it to draw
  /// their budget exactly once per conflict (GraceArbiter stores Delta).
  double* scratch = nullptr;
  /// Whether this site can deliver a kAbortEnemy verdict (TL2 can kill a
  /// lock holder, the simulator can abort a receiver; NOrec cannot).
  bool can_abort_enemy = true;
  /// The paper's local decision inputs: abort cost B, chain length k, the
  /// receiver's attempt count, and the optional profiler/oracle hints.
  core::ConflictContext context;
};

/// One-shot grant for deadline-based substrates: wait `grace` cycles, and if
/// the enemy has not finished by then apply `expiry_verdict` (never kWait).
struct GraceGrant {
  double grace = 0.0;
  Decision expiry_verdict = Decision::kAbortSelf;
};

/// A conflict-arbitration algorithm.  Implementations must be thread-safe:
/// one instance is shared by every thread of a substrate — and may be shared
/// by several substrates at once (the cross-substrate bench does exactly
/// that).  decide(), wait_quantum(), grace_grant() and feedback() must not
/// allocate: they sit on the steady-state hot path of the zero-allocation
/// STM (tests/test_conflict_arbiter.cpp enforces this; name() is exempt).
class ConflictArbiter {
 public:
  virtual ~ConflictArbiter() = default;

  /// Decide one conflict round.
  ///
  /// \param view  the requestor's local view of the conflict (see
  ///              ConflictView).
  /// \param rng   per-thread deterministic RNG for randomized arbiters.
  /// \return kWait to spin one more wait_quantum(), kAbortSelf to sacrifice
  ///         the requestor, kAbortEnemy to kill the holder (sites fall back
  ///         to waiting when the kill races a commit or is impossible).
  [[nodiscard]] virtual Decision decide(const ConflictView& view,
                                        sim::Rng& rng) const = 0;

  /// Spin iterations (spin substrates) / cycles (simulator) per kWait round.
  [[nodiscard]] virtual std::uint64_t wait_quantum(
      const ConflictView& view) const noexcept {
    (void)view;
    return 64;
  }

  /// One-shot form for deadline-based substrates: the whole grace budget
  /// plus the verdict to apply at expiry.  The default implementation
  /// replays decide() rounds against a frozen view (descriptor fields do not
  /// advance mid-grant) and is capped, so arbiters that would wait forever
  /// (Greedy's younger side) receive a long-but-finite stall.  Arbiters with
  /// a closed-form budget (GraceArbiter, AdaptiveArbiter) override this.
  [[nodiscard]] virtual GraceGrant grace_grant(const ConflictView& view,
                                               sim::Rng& rng) const;

  /// Whether decisions consult descriptor seniority (start_time/priority).
  /// Arbiters that decide purely locally (GraceArbiter, AdaptiveArbiter)
  /// return false and spare every transaction one fetch_add on the
  /// substrate's shared start ticket.
  [[nodiscard]] virtual bool needs_seniority() const noexcept { return true; }

  /// Outcome feedback (optional).  Called by the conflict site when a
  /// granted wait resolves: the enemy committed within the wait (an exact
  /// sample of its remaining time) or the budget expired (a censored
  /// sample).  Adaptive arbiters learn the length distribution from this
  /// stream; the default implementation ignores it.
  virtual void feedback(const core::ConflictOutcome& outcome) const noexcept {
    (void)outcome;
  }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Intermediate base for arbiters whose decision shape is "wait out a
/// per-conflict budget, then apply a flavor-derived verdict" — the shape of
/// both GraceArbiter and AdaptiveArbiter.  The base owns the shared
/// mechanics (scratch-cached budget, waits×quantum clock, verdict from
/// flavor + can_abort_enemy); subclasses supply budget() and flavor().
class BudgetedArbiter : public ConflictArbiter {
 public:
  [[nodiscard]] Decision decide(const ConflictView& view,
                                sim::Rng& rng) const final;
  [[nodiscard]] GraceGrant grace_grant(const ConflictView& view,
                                       sim::Rng& rng) const final;
  [[nodiscard]] std::uint64_t wait_quantum(
      const ConflictView&) const noexcept override {
    return 32;
  }
  /// Budgeted decisions are local (context-only); no seniority consulted.
  [[nodiscard]] bool needs_seniority() const noexcept override {
    return false;
  }

 protected:
  /// The grace budget for this conflict (cycles / spin iterations).  Called
  /// once per conflict when the site provides scratch; must not allocate.
  [[nodiscard]] virtual double budget(const ConflictView& view,
                                      sim::Rng& rng) const = 0;
  /// Which resolution flavor the verdict realizes at budget expiry.
  [[nodiscard]] virtual core::ResolutionMode flavor(
      const ConflictView& view) const = 0;

 private:
  /// budget(), drawn once per conflict and parked in the caller's scratch.
  [[nodiscard]] double cached_budget(const ConflictView& view,
                                     sim::Rng& rng) const;
  /// flavor() + the site's kill capability → the terminal verdict.
  [[nodiscard]] Decision expiry_verdict(const ConflictView& view) const;
};

}  // namespace txc::conflict
