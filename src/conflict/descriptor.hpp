// txconflict — substrate-agnostic transaction descriptors.
//
// A TxDescriptor is the minimal shared state a conflict arbiter may inspect
// about a transaction that is not its own: lifecycle status (with a remote
// kill protocol), a manager-specific priority, and a seniority stamp.  The
// type grew up inside the TL2 contention managers (descriptors are published
// on acquired write locks) but nothing about it is TL2-specific: the HTM
// simulator publishes one per core so the same seniority-based arbiters run
// there unmodified, and any future substrate can do the same.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/numa.hpp"

namespace txc::conflict {

/// Lifecycle of one transaction attempt.  kActive transactions can be killed
/// remotely; the kActive -> kCommitting transition closes the kill window
/// before write-back begins.
enum class TxStatus : std::uint32_t {
  kActive = 0,
  kCommitting = 1,
  kCommitted = 2,
  kAborted = 3,
};

/// Per-transaction descriptor, published wherever enemies may inspect and
/// (attempt to) kill the owner: TL2 stripes while write-locked, the HTM
/// simulator's per-core table while an attempt is in flight.
struct TxDescriptor {
  std::atomic<std::uint32_t> status{
      static_cast<std::uint32_t>(TxStatus::kAborted)};
  /// Manager-specific priority (Karma/Polka: cumulative work; Greedy /
  /// Timestamp: not used — they order by start_time).
  std::atomic<std::uint64_t> priority{0};
  /// Monotone start stamp of the transaction's *first* attempt (retries keep
  /// it, so long-suffering transactions age into higher seniority).
  std::atomic<std::uint64_t> start_time{0};
  /// Epoch-based-reclamation pin slot (mem/reclaim.hpp).  0 = not pinned;
  /// otherwise the global reclamation epoch this thread observed on entry to
  /// its innermost transactional section.  Lives on the descriptor so the
  /// reclaimer's scan reuses the slab the arbiters already probe — no second
  /// per-thread registry, same cache-line-per-thread layout.
  std::atomic<std::uint64_t> reclaim_epoch{0};

  [[nodiscard]] TxStatus load_status() const noexcept {
    return static_cast<TxStatus>(status.load(std::memory_order_acquire));
  }
  /// Remote kill: succeeds only while the victim is still kActive.
  bool try_kill() noexcept {
    auto expected = static_cast<std::uint32_t>(TxStatus::kActive);
    return status.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(TxStatus::kAborted),
        std::memory_order_acq_rel);
  }
};

/// Owner-side lazy credit publication: flush a locally-accumulated work
/// counter (reads performed, etc.) into the descriptor's priority and
/// reset it.  The owner is the only writer of its own priority (enemies
/// just load it), so a load+store pair beats a fetch_add RMW.  Shared by
/// every substrate that accrues Karma-style credit (TL2, NOrec).
inline void publish_credit(TxDescriptor& descriptor,
                           std::uint64_t& pending) noexcept {
  if (pending != 0) {
    descriptor.priority.store(
        descriptor.priority.load(std::memory_order_relaxed) + pending,
        std::memory_order_relaxed);
    pending = 0;
  }
}

/// Stamp per-transaction seniority from a substrate's shared start ticket.
/// Assigned once per *transaction* and kept across its retries:
/// Timestamp/Greedy rely on long-suffering transactions aging into
/// priority, and Karma work-credit likewise accumulates across attempts
/// (the priority reset here is per-transaction, not per-attempt).
inline void stamp_seniority(
    TxDescriptor& descriptor,
    std::atomic<std::uint64_t>& start_ticket) noexcept {
  descriptor.start_time.store(
      start_ticket.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  descriptor.priority.store(0, std::memory_order_relaxed);
}

/// Fixed slabs backing every thread's TxDescriptor, one slab per NUMA node.
/// Stripes publish raw descriptor pointers and enemies chase them after the
/// holder released, so descriptors must never be freed while any transaction
/// might still probe them; static, cache-line-aligned slabs give each
/// descriptor its own line (remote status/priority reads do not false-share
/// with a neighbor thread's descriptor) and keep publication entirely off
/// the heap.  kDescriptorSlabSize is the capacity PER NODE; threads past it
/// get an intentionally-leaked heap descriptor: a one-time 64-byte
/// allocation per overflow thread keeps the never-freed invariant (a
/// thread_local would be destroyed at thread exit, exactly the
/// use-after-free the slab exists to prevent) at the cost of one alloc
/// outside the steady-state zero-allocation guarantee.
inline constexpr std::size_t kDescriptorSlabSize = 256;
/// Distinguished NUMA nodes: nodes beyond this share slab 0's arena (the
/// status spins still work, they just lose locality).  Sized generously —
/// the per-node cost is 16 KiB of zero-initialized static storage.
inline constexpr std::size_t kDescriptorSlabNodes = 8;

namespace detail {
struct alignas(64) PaddedTxDescriptor {
  TxDescriptor descriptor;
  /// Intrusive link for the overflow registry (heap descriptors past slab
  /// capacity).  Slab-resident descriptors never use it.
  PaddedTxDescriptor* overflow_next = nullptr;
};

struct NodeSlab {
  PaddedTxDescriptor slots[kDescriptorSlabSize];
  std::atomic<std::size_t> next{0};
};

[[nodiscard]] inline NodeSlab* descriptor_slabs() noexcept {
  static NodeSlab slabs[kDescriptorSlabNodes];
  return slabs;
}

/// Head of the overflow-descriptor list.  Overflow descriptors are leaked by
/// design (see above), so a push-only intrusive list is lossless: every
/// descriptor ever handed out stays reachable for the reclaimer's scan.
[[nodiscard]] inline std::atomic<PaddedTxDescriptor*>&
overflow_descriptors() noexcept {
  static std::atomic<PaddedTxDescriptor*> head{nullptr};
  return head;
}
}  // namespace detail

/// The calling thread's slab-backed descriptor, assigned on first use and
/// reused across every transaction (and every substrate instance) of the
/// thread.
///
/// NUMA placement is pure first-touch: a slab slot's backing page is
/// faulted in by the write of the claiming thread (the lambda below runs on
/// that thread), and slots are partitioned per node, so the descriptors of
/// node-N threads — the words every OTHER node's arbiters spin on via
/// load_status() — live in node-N memory.  The remote-probe cost this
/// placement governs is measured by bench/stripe_geometry.cpp's descriptor
/// panel.  On a single-node machine all threads draw from slab 0 and the
/// behavior is exactly the old single-slab scheme.
[[nodiscard]] inline TxDescriptor& thread_descriptor() noexcept {
  thread_local TxDescriptor* mine = [] {
    detail::NodeSlab& slab = detail::descriptor_slabs()
        [core::numa::current_node() % kDescriptorSlabNodes];
    const std::size_t slot = slab.next.fetch_add(1, std::memory_order_relaxed);
    if (slot < kDescriptorSlabSize) return &slab.slots[slot].descriptor;
    // Leaked by design; registered so reclamation scans still see it.
    auto* overflow = new detail::PaddedTxDescriptor;
    auto& head = detail::overflow_descriptors();
    overflow->overflow_next = head.load(std::memory_order_relaxed);
    while (!head.compare_exchange_weak(overflow->overflow_next, overflow,
                                       std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
    return &overflow->descriptor;
  }();
  return *mine;
}

/// Visit every descriptor ever handed out by thread_descriptor(): all claimed
/// slab slots plus the overflow chain.  Used by epoch reclamation
/// (mem/reclaim.hpp) to decide whether any thread is still pinned in a stale
/// epoch.  Visiting a slot that was claimed but whose owner thread has since
/// exited is fine — exited threads leave reclaim_epoch at 0 (unpinned).
template <typename Fn>
inline void for_each_thread_descriptor(Fn&& fn) {
  detail::NodeSlab* slabs = detail::descriptor_slabs();
  for (std::size_t node = 0; node < kDescriptorSlabNodes; ++node) {
    const std::size_t claimed =
        slabs[node].next.load(std::memory_order_acquire);
    const std::size_t limit =
        claimed < kDescriptorSlabSize ? claimed : kDescriptorSlabSize;
    for (std::size_t slot = 0; slot < limit; ++slot) {
      fn(slabs[node].slots[slot].descriptor);
    }
  }
  for (detail::PaddedTxDescriptor* overflow =
           detail::overflow_descriptors().load(std::memory_order_acquire);
       overflow != nullptr; overflow = overflow->overflow_next) {
    fn(overflow->descriptor);
  }
}

}  // namespace txc::conflict
