// txconflict — substrate-agnostic transaction descriptors.
//
// A TxDescriptor is the minimal shared state a conflict arbiter may inspect
// about a transaction that is not its own: lifecycle status (with a remote
// kill protocol), a manager-specific priority, and a seniority stamp.  The
// type grew up inside the TL2 contention managers (descriptors are published
// on acquired write locks) but nothing about it is TL2-specific: the HTM
// simulator publishes one per core so the same seniority-based arbiters run
// there unmodified, and any future substrate can do the same.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace txc::conflict {

/// Lifecycle of one transaction attempt.  kActive transactions can be killed
/// remotely; the kActive -> kCommitting transition closes the kill window
/// before write-back begins.
enum class TxStatus : std::uint32_t {
  kActive = 0,
  kCommitting = 1,
  kCommitted = 2,
  kAborted = 3,
};

/// Per-transaction descriptor, published wherever enemies may inspect and
/// (attempt to) kill the owner: TL2 stripes while write-locked, the HTM
/// simulator's per-core table while an attempt is in flight.
struct TxDescriptor {
  std::atomic<std::uint32_t> status{
      static_cast<std::uint32_t>(TxStatus::kAborted)};
  /// Manager-specific priority (Karma/Polka: cumulative work; Greedy /
  /// Timestamp: not used — they order by start_time).
  std::atomic<std::uint64_t> priority{0};
  /// Monotone start stamp of the transaction's *first* attempt (retries keep
  /// it, so long-suffering transactions age into higher seniority).
  std::atomic<std::uint64_t> start_time{0};

  [[nodiscard]] TxStatus load_status() const noexcept {
    return static_cast<TxStatus>(status.load(std::memory_order_acquire));
  }
  /// Remote kill: succeeds only while the victim is still kActive.
  bool try_kill() noexcept {
    auto expected = static_cast<std::uint32_t>(TxStatus::kActive);
    return status.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(TxStatus::kAborted),
        std::memory_order_acq_rel);
  }
};

/// Owner-side lazy credit publication: flush a locally-accumulated work
/// counter (reads performed, etc.) into the descriptor's priority and
/// reset it.  The owner is the only writer of its own priority (enemies
/// just load it), so a load+store pair beats a fetch_add RMW.  Shared by
/// every substrate that accrues Karma-style credit (TL2, NOrec).
inline void publish_credit(TxDescriptor& descriptor,
                           std::uint64_t& pending) noexcept {
  if (pending != 0) {
    descriptor.priority.store(
        descriptor.priority.load(std::memory_order_relaxed) + pending,
        std::memory_order_relaxed);
    pending = 0;
  }
}

/// Stamp per-transaction seniority from a substrate's shared start ticket.
/// Assigned once per *transaction* and kept across its retries:
/// Timestamp/Greedy rely on long-suffering transactions aging into
/// priority, and Karma work-credit likewise accumulates across attempts
/// (the priority reset here is per-transaction, not per-attempt).
inline void stamp_seniority(
    TxDescriptor& descriptor,
    std::atomic<std::uint64_t>& start_ticket) noexcept {
  descriptor.start_time.store(
      start_ticket.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  descriptor.priority.store(0, std::memory_order_relaxed);
}

/// Fixed slab backing every thread's TxDescriptor.  Stripes publish raw
/// descriptor pointers and enemies chase them after the holder released, so
/// descriptors must never be freed while any transaction might still probe
/// them; a static, cache-line-aligned slab gives each descriptor its own
/// line (remote status/priority reads do not false-share with a neighbor
/// thread's descriptor) and keeps publication entirely off the heap.
/// Threads past the slab capacity get an intentionally-leaked heap
/// descriptor: a one-time 64-byte allocation per overflow thread keeps the
/// never-freed invariant (a thread_local would be destroyed at thread exit,
/// exactly the use-after-free the slab exists to prevent) at the cost of
/// one alloc outside the steady-state zero-allocation guarantee.
inline constexpr std::size_t kDescriptorSlabSize = 256;

namespace detail {
struct alignas(64) PaddedTxDescriptor {
  TxDescriptor descriptor;
};
}  // namespace detail

/// The calling thread's slab-backed descriptor, assigned on first use and
/// reused across every transaction (and every substrate instance) of the
/// thread.
[[nodiscard]] inline TxDescriptor& thread_descriptor() noexcept {
  static detail::PaddedTxDescriptor slab[kDescriptorSlabSize];
  static std::atomic<std::size_t> next_slot{0};
  thread_local TxDescriptor* mine = [] {
    const std::size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed);
    if (slot < kDescriptorSlabSize) return &slab[slot].descriptor;
    return &(new detail::PaddedTxDescriptor)->descriptor;  // leaked by design
  }();
  return *mine;
}

}  // namespace txc::conflict
