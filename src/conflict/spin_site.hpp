// txconflict — the shared spin-site arbitration driver.
//
// A *spin site* is a conflict site that waits by actually spinning on shared
// memory: TL2 transactions probing a held versioned write-lock stripe,
// NOrec transactions probing the odd global commit seqlock.  (The
// discrete-event simulator is not a spin site — it consumes arbiters through
// the one-shot grace_grant() form instead.)  Before this driver existed the
// two spin sites each carried a private copy of the same ~30-line
// arbitration shape — scratch/view setup, the outcome-report lambda, the
// decide switch, the quantum spin with early-exit accounting — diverging
// only in what they probe and how they kill.  drive_spin_site() owns that
// shape once; a substrate contributes a small Site object with five
// customization points:
//
//   resolved()        validation re-probe: has the conflict cleared?  (TL2:
//                     the stripe lock bit dropped; NOrec: the seqlock went
//                     even.)  Called at every spin iteration; a Site may
//                     latch what it observed (NOrec records the even value
//                     the caller resumes from).
//   self_killed()     remote-kill unwinding: was the *requestor* killed
//                     while waiting?  The driver returns kSelfKilled without
//                     reporting feedback — the conflict did not resolve, the
//                     requestor was removed from it.
//   enemy()           enemy-descriptor probe: the holder's TxDescriptor, or
//                     nullptr while the site has none published (released
//                     between detection and inspection, or not yet
//                     published).  Re-probed every round: holders change.
//   kill()            kill protocol: deliver a kAbortEnemy verdict (re-probe
//                     the holder, CAS its status, count the kill).  Returns
//                     whether the kill landed; the driver keeps waiting
//                     either way — the victim unwinds itself and releases.
//   prime(view)       one-time view setup: self descriptor, kill
//                     capability, and the paper's ConflictContext (abort
//                     cost B, chain length k, attempt number).
//
// plus one knob, suppress_feedback_after_kill(): when the driver killed the
// enemy, the observed wait is a *forced* finish, not a sample of the
// enemy's remaining time, and sites that learn from feedback suppress it.
// Both STM spin sites suppress; the knob exists so a future site that wants
// censored kill samples can keep them.
//
// The driver guarantees the arbiter contract the conformance suite
// (tests/test_conflict_arbiter.cpp) checks for: one budget draw per conflict
// (the scratch slot), exact early-exit spin accounting in the feedback
// outcome, a last-instant resolved() re-probe before honoring kAbortSelf,
// and no heap allocation anywhere on the path
// (tests/test_stm_alloc.cpp pins that under real contention).
#pragma once

#include <cstdint>

#include "conflict/arbiter.hpp"
#include "conflict/injection.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"

namespace txc::conflict {

/// How one driven conflict ended, from the requestor's point of view.
enum class SpinResult {
  kEnemyFinished,  // the site resolved (lock cleared): retry the operation
  kSelfAbort,      // the arbiter sacrificed the requestor
  kSelfKilled,     // the requestor was remotely killed while waiting
};

/// Drive one conflict at a spin site to resolution.  `site` supplies the
/// substrate-specific probes (see the header comment for the Site concept);
/// the driver owns the decide loop, the quantum spin, and the outcome
/// feedback.  Allocation-free; called on the STM hot path.
template <typename Site>
[[nodiscard]] SpinResult drive_spin_site(const ConflictArbiter& arbiter,
                                         Site& site, sim::Rng& rng) {
  double scratch = -1.0;  // per-conflict budget slot for randomized arbiters
  ConflictView view;
  view.scratch = &scratch;
  site.prime(view);
  double spun = 0.0;          // spin iterations actually waited
  bool killed_enemy = false;  // a forced finish is not a remaining-time sample
  // Outcome feedback: the enemy finishing within our wait is an exact sample
  // of its remaining time; giving up is a censored one (it needed more than
  // the budget we spent).
  const auto report = [&](bool enemy_finished) {
    if (killed_enemy && site.suppress_feedback_after_kill()) return;
    core::ConflictOutcome outcome;
    outcome.committed = enemy_finished;
    outcome.grace = scratch >= 0.0 ? scratch : spun;
    outcome.waited = spun;
    outcome.chain_length = view.context.chain_length;
    arbiter.feedback(outcome);
  };
  while (true) {
    if (site.resolved()) {
      report(/*enemy_finished=*/true);
      return SpinResult::kEnemyFinished;
    }
    if (site.self_killed()) return SpinResult::kSelfKilled;
    // Scheduler-adversary seam: a preemption adversary may stall or yield
    // the waiter here, between conflict detection and the decide round —
    // one acquire load when no adversary is installed (conflict/injection).
    maybe_hook(HookPoint::kSpinWait);
    view.enemy = site.enemy();
    switch (arbiter.decide(view, rng)) {
      case Decision::kAbortSelf:
        if (site.resolved()) {  // freed at the last instant
          report(/*enemy_finished=*/true);
          return SpinResult::kEnemyFinished;
        }
        report(/*enemy_finished=*/false);
        return SpinResult::kSelfAbort;
      case Decision::kAbortEnemy:
        if (site.kill()) killed_enemy = true;
        // Fall through to waiting: the victim notices at its next status
        // check and releases whatever it holds.
        break;
      case Decision::kWait:
        break;
    }
    const std::uint64_t quantum = arbiter.wait_quantum(view);
    for (std::uint64_t spin = 0; spin < quantum; ++spin) {
      if (site.resolved()) {
        spun += static_cast<double>(spin);
        report(/*enemy_finished=*/true);
        return SpinResult::kEnemyFinished;
      }
    }
    spun += static_cast<double>(quantum);
    ++view.waits_so_far;
  }
}

}  // namespace txc::conflict
