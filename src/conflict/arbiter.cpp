#include "conflict/arbiter.hpp"

namespace txc::conflict {

namespace {

/// Round cap for the default grace_grant() replay.  Arbiters that never stop
/// waiting (Greedy's younger side) would otherwise loop forever; at the cap
/// the requestor gives up on the grant — in the simulator the stall is
/// usually resolved much earlier by the receiver finishing and waking its
/// waiters, so the cap only bounds pathological stalls.
constexpr std::uint64_t kGrantRoundCap = 1024;

}  // namespace

GraceGrant ConflictArbiter::grace_grant(const ConflictView& view,
                                        sim::Rng& rng) const {
  ConflictView replay = view;
  double scratch = -1.0;
  if (replay.scratch == nullptr) replay.scratch = &scratch;
  double budget = 0.0;
  for (std::uint64_t round = 0; round < kGrantRoundCap; ++round) {
    replay.waits_so_far = round;
    const Decision decision = decide(replay, rng);
    if (decision != Decision::kWait) return {budget, decision};
    budget += static_cast<double>(wait_quantum(replay));
  }
  return {budget, Decision::kAbortSelf};
}

// ---------------------------------------------------------------------------
// BudgetedArbiter
// ---------------------------------------------------------------------------

double BudgetedArbiter::cached_budget(const ConflictView& view,
                                      sim::Rng& rng) const {
  if (view.scratch != nullptr && *view.scratch >= 0.0) return *view.scratch;
  const double grace = budget(view, rng);
  if (view.scratch != nullptr) *view.scratch = grace;
  return grace;
}

Decision BudgetedArbiter::expiry_verdict(const ConflictView& view) const {
  return flavor(view) == core::ResolutionMode::kRequestorWins &&
                 view.can_abort_enemy
             ? Decision::kAbortEnemy
             : Decision::kAbortSelf;
}

Decision BudgetedArbiter::decide(const ConflictView& view,
                                 sim::Rng& rng) const {
  const double grace = cached_budget(view, rng);
  const double waited = static_cast<double>(view.waits_so_far) *
                        static_cast<double>(wait_quantum(view));
  return waited < grace ? Decision::kWait : expiry_verdict(view);
}

GraceGrant BudgetedArbiter::grace_grant(const ConflictView& view,
                                        sim::Rng& rng) const {
  return {cached_budget(view, rng), expiry_verdict(view)};
}

}  // namespace txc::conflict
