#include "conflict/managers.hpp"

namespace txc::conflict {

namespace {

/// Enemy vanished (released, never published, or anonymous): retrying the
/// lock is all that is needed — a single quantum wait re-checks.
bool enemy_gone(const ConflictView& view) noexcept {
  return view.enemy == nullptr ||
         view.enemy->load_status() != TxStatus::kActive;
}

/// Substrate published no descriptor for us: there is nothing to weigh a
/// live enemy against, so the portable degradation is to wait.
bool self_unknown(const ConflictView& view) noexcept {
  return view.self == nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Polite
// ---------------------------------------------------------------------------

Decision PoliteCm::decide(const ConflictView& view, sim::Rng&) const {
  if (enemy_gone(view)) return Decision::kWait;
  return view.waits_so_far >= max_rounds_ ? Decision::kAbortEnemy
                                          : Decision::kWait;
}

std::uint64_t PoliteCm::wait_quantum(const ConflictView& view) const noexcept {
  // Exponential: 2^round quanta, capped at 2^max_rounds.
  const std::uint64_t round =
      view.waits_so_far < max_rounds_ ? view.waits_so_far : max_rounds_;
  return std::uint64_t{16} << round;
}

// ---------------------------------------------------------------------------
// Karma
// ---------------------------------------------------------------------------

Decision KarmaCm::decide(const ConflictView& view, sim::Rng&) const {
  if (enemy_gone(view) || self_unknown(view)) return Decision::kWait;
  const std::uint64_t mine =
      view.self->priority.load(std::memory_order_relaxed) + view.waits_so_far;
  const std::uint64_t theirs =
      view.enemy->priority.load(std::memory_order_relaxed);
  return mine > theirs ? Decision::kAbortEnemy : Decision::kWait;
}

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

Decision TimestampCm::decide(const ConflictView& view, sim::Rng&) const {
  if (enemy_gone(view)) return Decision::kWait;
  if (self_unknown(view)) {
    // No seniority of our own to claim: fall back to the patience budget.
    return view.waits_so_far >= patience_ ? Decision::kAbortSelf
                                          : Decision::kWait;
  }
  const std::uint64_t mine =
      view.self->start_time.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->start_time.load(std::memory_order_relaxed);
  if (mine < theirs) return Decision::kAbortEnemy;  // seniority wins
  return view.waits_so_far >= patience_ ? Decision::kAbortSelf
                                        : Decision::kWait;
}

// ---------------------------------------------------------------------------
// Greedy
// ---------------------------------------------------------------------------

Decision GreedyCm::decide(const ConflictView& view, sim::Rng&) const {
  if (enemy_gone(view) || self_unknown(view)) return Decision::kWait;
  const std::uint64_t mine =
      view.self->start_time.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->start_time.load(std::memory_order_relaxed);
  return mine < theirs ? Decision::kAbortEnemy : Decision::kWait;
}

// ---------------------------------------------------------------------------
// Polka
// ---------------------------------------------------------------------------

Decision PolkaCm::decide(const ConflictView& view, sim::Rng&) const {
  if (enemy_gone(view) || self_unknown(view)) return Decision::kWait;
  const std::uint64_t mine =
      view.self->priority.load(std::memory_order_relaxed);
  const std::uint64_t theirs =
      view.enemy->priority.load(std::memory_order_relaxed);
  const std::uint64_t gap = theirs > mine ? theirs - mine : 0;
  return view.waits_so_far > gap ? Decision::kAbortEnemy : Decision::kWait;
}

std::uint64_t PolkaCm::wait_quantum(const ConflictView& view) const noexcept {
  const std::uint64_t round =
      view.waits_so_far < 12 ? view.waits_so_far : 12;
  return std::uint64_t{16} << round;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

const char* to_string(CmKind kind) noexcept {
  switch (kind) {
    case CmKind::kPolite: return "Polite";
    case CmKind::kKarma: return "Karma";
    case CmKind::kTimestamp: return "Timestamp";
    case CmKind::kGreedy: return "Greedy";
    case CmKind::kPolka: return "Polka";
  }
  return "?";
}

std::shared_ptr<const ConflictArbiter> make_cm(CmKind kind) {
  switch (kind) {
    case CmKind::kPolite: return std::make_shared<PoliteCm>();
    case CmKind::kKarma: return std::make_shared<KarmaCm>();
    case CmKind::kTimestamp: return std::make_shared<TimestampCm>();
    case CmKind::kGreedy: return std::make_shared<GreedyCm>();
    case CmKind::kPolka: return std::make_shared<PolkaCm>();
  }
  return std::make_shared<PoliteCm>();
}

}  // namespace txc::conflict
