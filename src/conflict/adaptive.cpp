#include "conflict/adaptive.hpp"

namespace txc::conflict {

using detail::SpinGuard;

AdaptiveArbiter::AdaptiveArbiter() : AdaptiveArbiter(Params{}) {}

double AdaptiveArbiter::budget(const ConflictView& view, sim::Rng&) const {
  double mean = params_.initial_mean;
  bool ready = false;
  {
    SpinGuard guard{estimator_lock_};
    mean = estimator_.mean();
    ready = estimator_.count() >= params_.min_samples;
  }
  const double weight = wait_weight(view);
  const double abort_cost =
      view.context.abort_cost > 0.0 ? view.context.abort_cost : 1.0;
  if (ready && mean * weight > abort_cost) {
    return 0.0;  // immediate-abort regime: waiting is expected to lose
  }
  const double cap = abort_cost / weight;
  const double grace = params_.headroom * mean;
  return grace > cap ? cap : grace;
}

void AdaptiveArbiter::feedback(
    const core::ConflictOutcome& outcome) const noexcept {
  SpinGuard guard{estimator_lock_};
  if (outcome.committed) {
    estimator_.add_exact(outcome.waited);
  } else {
    estimator_.add_censored(outcome.grace);
  }
}

double AdaptiveArbiter::learned_mean() const noexcept {
  SpinGuard guard{estimator_lock_};
  return estimator_.mean();
}

std::size_t AdaptiveArbiter::feedback_samples() const noexcept {
  SpinGuard guard{estimator_lock_};
  return estimator_.count();
}

bool AdaptiveArbiter::in_immediate_regime(double abort_cost,
                                          int chain_length) const noexcept {
  ConflictView view;
  view.context.abort_cost = abort_cost;
  view.context.chain_length = chain_length;
  sim::Rng rng{0};  // budget() is deterministic; the stream is unused
  return budget(view, rng) < 1.0;
}

}  // namespace txc::conflict
