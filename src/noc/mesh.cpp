#include "noc/mesh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace txc::noc {

MeshNoc::MeshNoc(const MeshConfig& config)
    : config_(config),
      link_busy_until_(static_cast<std::size_t>(tiles()) * 4, 0),
      link_traversals_(static_cast<std::size_t>(tiles()) * 4, 0) {
  assert(config_.width >= 1 && config_.height >= 1);
}

MeshConfig MeshNoc::fit(std::uint32_t tiles, const MeshConfig& base) {
  MeshConfig config = base;
  config.width = 1;
  config.height = 1;
  while (config.width * config.height < tiles) {
    // Grow the shorter side so the mesh stays square-ish (Graphite's layout).
    if (config.width <= config.height) {
      ++config.width;
    } else {
      ++config.height;
    }
  }
  return config;
}

Coordinate MeshNoc::coordinate(TileId tile) const noexcept {
  return Coordinate{tile % config_.width, tile / config_.width};
}

TileId MeshNoc::tile_at(Coordinate c) const noexcept {
  return c.y * config_.width + c.x;
}

std::uint32_t MeshNoc::hops(TileId src, TileId dst) const noexcept {
  const Coordinate a = coordinate(src);
  const Coordinate b = coordinate(dst);
  const std::uint32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const std::uint32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

Tick MeshNoc::pure_latency(TileId src, TileId dst) const noexcept {
  const std::uint32_t distance = hops(src, dst);
  return config_.router_latency * (distance + 1) +
         config_.link_latency * distance;
}

std::vector<std::uint32_t> MeshNoc::path_links(TileId src, TileId dst) const {
  std::vector<std::uint32_t> links;
  Coordinate at = coordinate(src);
  const Coordinate goal = coordinate(dst);
  // Dimension-ordered: resolve X first, then Y.
  while (at.x != goal.x) {
    const Direction direction = at.x < goal.x ? kEast : kWest;
    links.push_back(link_id(tile_at(at), direction));
    at.x = at.x < goal.x ? at.x + 1 : at.x - 1;
  }
  while (at.y != goal.y) {
    const Direction direction = at.y < goal.y ? kSouth : kNorth;
    links.push_back(link_id(tile_at(at), direction));
    at.y = at.y < goal.y ? at.y + 1 : at.y - 1;
  }
  return links;
}

Tick MeshNoc::traverse(TileId src, TileId dst, Tick now, MessageClass cls) {
  ++stats_.messages[static_cast<std::size_t>(cls)];
  const std::uint32_t distance = hops(src, dst);
  stats_.total_hops += distance;

  if (!config_.model_contention) {
    return now + pure_latency(src, dst);
  }

  // Walk the XY path link by link: each hop starts when both the message has
  // arrived at the upstream router and the link is free, then occupies the
  // link for occupancy_cycles.
  Tick head = now + config_.router_latency;  // source router pipe
  for (const std::uint32_t link : path_links(src, dst)) {
    Tick& busy_until = link_busy_until_[link];
    if (busy_until > head) {
      stats_.queueing_cycles += busy_until - head;
      head = busy_until;
    }
    busy_until = head + config_.occupancy_cycles;
    ++link_traversals_[link];
    head += config_.link_latency + config_.router_latency;
  }
  return head;
}

Tick MeshNoc::round_trip(TileId src, TileId dst, Tick now, MessageClass cls) {
  const Tick arrival = traverse(src, dst, now, cls);
  return traverse(dst, src, arrival, MessageClass::kData);
}

std::uint64_t MeshNoc::max_link_traversals() const noexcept {
  const auto it =
      std::max_element(link_traversals_.begin(), link_traversals_.end());
  return it == link_traversals_.end() ? 0 : *it;
}

void MeshNoc::reset_stats() noexcept {
  stats_ = NocStats{};
  std::fill(link_traversals_.begin(), link_traversals_.end(), 0);
  std::fill(link_busy_until_.begin(), link_busy_until_.end(), 0);
}

}  // namespace txc::noc
