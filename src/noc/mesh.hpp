// txconflict — 2D mesh network-on-chip model.
//
// The paper's testbed is MIT Graphite, a *tiled* multicore simulator: cores
// sit on a 2D mesh and every coherence message (request, data, invalidation,
// NACK) crosses hop-by-hop between tiles.  The base HTM simulator abstracts
// this into one flat `remote_latency`; this module restores the
// distance-dependent component so that conflict timing — and therefore the
// abort cost B the policies see — varies with placement, exactly the noise a
// real tiled machine injects into the online decision problem.
//
// Model:
//   * tiles are arranged in a width x height grid; core c lives on tile c;
//   * routing is dimension-ordered (XY): all X hops first, then Y hops —
//     deadlock-free and deterministic, the standard choice in tiled CMPs;
//   * a message from s to d costs
//       router_latency * (hops + 1) + link_latency * hops
//     (one router pipe per traversed router including source and sink);
//   * optionally, links serialize: each directed link keeps a busy-until
//     time and a message occupies every link on its path for
//     `occupancy_cycles`, modelling head-of-line blocking under bursts.
//     With `model_contention = false` the mesh is a pure latency table.
//
// The HTM layer maps a memory line to its *home tile* (directory slice) by
// line-id interleaving, issues request/response pairs through the mesh, and
// adds the resulting round-trip to the access latency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace txc::noc {

using Tick = std::uint64_t;
using TileId = std::uint32_t;

struct MeshConfig {
  std::uint32_t width = 4;
  std::uint32_t height = 4;
  Tick link_latency = 1;    // per-hop wire traversal
  Tick router_latency = 1;  // per-router pipeline
  /// Cycles a message occupies each link on its path (serialization).
  Tick occupancy_cycles = 1;
  /// When false, traverse() ignores queueing and returns pure distance
  /// latency (an infinite-bandwidth mesh).
  bool model_contention = true;
};

/// Message classes whose traffic the mesh accounts separately.  The mix is
/// reported by benches: grace periods trade NACK traffic against abort/refill
/// traffic, which is visible here.
enum class MessageClass : std::uint8_t {
  kRequest,       // L1 miss -> home directory
  kData,          // data/ack response
  kInvalidation,  // directory -> sharer
  kNack,          // receiver-in-grace-period -> requestor
};
inline constexpr std::size_t kMessageClassCount = 4;

[[nodiscard]] constexpr const char* to_string(MessageClass cls) noexcept {
  switch (cls) {
    case MessageClass::kRequest: return "request";
    case MessageClass::kData: return "data";
    case MessageClass::kInvalidation: return "invalidation";
    case MessageClass::kNack: return "nack";
  }
  return "?";
}

struct Coordinate {
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  [[nodiscard]] bool operator==(const Coordinate&) const noexcept = default;
};

struct NocStats {
  std::uint64_t messages[kMessageClassCount] = {};
  std::uint64_t total_hops = 0;
  /// Cycles messages spent queued behind busy links (contention model only).
  std::uint64_t queueing_cycles = 0;

  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    std::uint64_t sum = 0;
    for (const auto count : messages) sum += count;
    return sum;
  }
  [[nodiscard]] double mean_hops() const noexcept {
    const auto total = total_messages();
    return total == 0 ? 0.0
                      : static_cast<double>(total_hops) /
                            static_cast<double>(total);
  }
};

class MeshNoc {
 public:
  explicit MeshNoc(const MeshConfig& config);

  /// Smallest square-ish mesh holding `tiles` tiles.
  [[nodiscard]] static MeshConfig fit(std::uint32_t tiles,
                                      const MeshConfig& base = {});

  [[nodiscard]] std::uint32_t tiles() const noexcept {
    return config_.width * config_.height;
  }
  [[nodiscard]] Coordinate coordinate(TileId tile) const noexcept;
  [[nodiscard]] TileId tile_at(Coordinate c) const noexcept;

  /// Manhattan distance under XY routing.
  [[nodiscard]] std::uint32_t hops(TileId src, TileId dst) const noexcept;

  /// Pure distance latency of one message, ignoring queueing.
  [[nodiscard]] Tick pure_latency(TileId src, TileId dst) const noexcept;

  /// Deliver one message at time `now`; returns its arrival time.  With the
  /// contention model enabled this advances busy-until on every traversed
  /// link, so bursts between the same tile pair serialize.
  Tick traverse(TileId src, TileId dst, Tick now, MessageClass cls);

  /// A request/response round trip (request `cls` out, kData back).
  Tick round_trip(TileId src, TileId dst, Tick now, MessageClass cls);

  /// Directed links in the XY path from src to dst (exposed for tests).
  [[nodiscard]] std::vector<std::uint32_t> path_links(TileId src,
                                                      TileId dst) const;

  /// Per-link traversal counts, indexed like path_links' ids.
  [[nodiscard]] const std::vector<std::uint64_t>& link_traversals()
      const noexcept {
    return link_traversals_;
  }
  /// Largest per-link traversal count — the hotspot metric benches report.
  [[nodiscard]] std::uint64_t max_link_traversals() const noexcept;

  [[nodiscard]] const NocStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const MeshConfig& config() const noexcept { return config_; }

  void reset_stats() noexcept;

 private:
  /// Directed link ids: 4 per tile (east, west, north, south).
  enum Direction : std::uint32_t { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
  [[nodiscard]] std::uint32_t link_id(TileId from,
                                      Direction direction) const noexcept {
    return from * 4 + direction;
  }

  MeshConfig config_;
  std::vector<Tick> link_busy_until_;
  std::vector<std::uint64_t> link_traversals_;
  NocStats stats_;
};

}  // namespace txc::noc
