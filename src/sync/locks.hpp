// txconflict — spin-lock primitives for the lock-based baselines.
//
// The paper's data structures run transactionally with lock-free slow paths;
// rounding out the comparison requires the third classic implementation
// family, lock-based structures.  This header provides the three canonical
// spin locks, in increasing fairness/locality sophistication:
//
//   TtasSpinlock — test-and-test-and-set with bounded exponential backoff:
//                  cheapest uncontended path, no fairness guarantee;
//   TicketLock   — FIFO-fair by construction (monotone ticket/grant pair);
//   McsLock      — FIFO-fair queue lock, each waiter spins on its *own*
//                  node (local spinning: one coherence transfer per handoff,
//                  the property that matters on the mesh NoC).
//
// All three satisfy Lockable (lock/try_lock/unlock), so std::lock_guard and
// the locked containers template work with any of them.  MCS carries its
// queue node in thread_local storage keyed by lock instance — the standard
// trick to keep the Lockable interface without threading a node through
// every call.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace txc::sync {

/// Bounded exponential backoff helper shared by the spin loops.  Once the
/// spin budget saturates it starts yielding: on an oversubscribed host
/// (more threads than cores) the lock holder is likely descheduled, and
/// burning the rest of the quantum spinning would stall everyone — the
/// classic spin-lock pathology.
class Backoff {
 public:
  void pause() noexcept {
    if (limit_ >= kMaxSpin) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t spin = 0; spin < limit_; ++spin) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
    limit_ *= 2;
  }
  void reset() noexcept { limit_ = kMinSpin; }

 private:
  static constexpr std::uint32_t kMinSpin = 4;
  static constexpr std::uint32_t kMaxSpin = 1024;
  std::uint32_t limit_ = kMinSpin;
};

class TtasSpinlock {
 public:
  void lock() noexcept {
    Backoff backoff;
    while (true) {
      if (!locked_.load(std::memory_order_relaxed) &&
          !locked_.exchange(true, std::memory_order_acquire)) {
        return;
      }
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> locked_{false};
};

class TicketLock {
 public:
  void lock() noexcept {
    const std::uint64_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (serving_.load(std::memory_order_acquire) != ticket) {
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    std::uint64_t serving = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = serving;
    // Take a ticket only if it would be served immediately.
    return next_.compare_exchange_strong(expected, serving + 1,
                                         std::memory_order_acquire);
  }

  void unlock() noexcept {
    serving_.fetch_add(1, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> serving_{0};
};

class McsLock {
 public:
  void lock() noexcept {
    Node* node = my_node();
    node->next.store(nullptr, std::memory_order_relaxed);
    node->ready.store(false, std::memory_order_relaxed);
    Node* predecessor = tail_.exchange(node, std::memory_order_acq_rel);
    if (predecessor == nullptr) return;  // uncontended
    predecessor->next.store(node, std::memory_order_release);
    // Local spin: only this cache line bounces, and only once per handoff.
    Backoff backoff;
    while (!node->ready.load(std::memory_order_acquire)) {
      backoff.pause();
    }
  }

  bool try_lock() noexcept {
    Node* node = my_node();
    node->next.store(nullptr, std::memory_order_relaxed);
    node->ready.store(false, std::memory_order_relaxed);
    Node* expected = nullptr;
    return tail_.compare_exchange_strong(expected, node,
                                         std::memory_order_acq_rel);
  }

  void unlock() noexcept {
    Node* node = my_node();
    Node* successor = node->next.load(std::memory_order_acquire);
    if (successor == nullptr) {
      Node* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
        return;  // no one waiting
      }
      // A successor is linking itself in; wait for the pointer.
      Backoff backoff;
      while ((successor = node->next.load(std::memory_order_acquire)) ==
             nullptr) {
        backoff.pause();
      }
    }
    successor->ready.store(true, std::memory_order_release);
  }

 private:
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> ready{false};
  };

  /// One queue node per (thread, lock) pair.  A thread holds at most one
  /// position in any given MCS queue, and the node must stay valid while
  /// enqueued — thread_local storage guarantees both for the supported
  /// pattern (no lock() of the same lock twice without unlock()).
  Node* my_node() noexcept {
    thread_local Node node_for_[kMaxLocksPerThread];
    // Hash the lock address into the per-thread node table; collisions are
    // fine as long as a thread does not hold two colliding MCS locks at
    // once, which the containers below never do.
    const auto slot =
        (reinterpret_cast<std::uintptr_t>(this) >> 6) % kMaxLocksPerThread;
    return &node_for_[slot];
  }

  static constexpr std::size_t kMaxLocksPerThread = 64;
  std::atomic<Node*> tail_{nullptr};
};

}  // namespace txc::sync
