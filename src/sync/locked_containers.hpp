// txconflict — coarse-grained lock-based container baselines.
//
// The third implementation family next to the transactional (HTM/STM) and
// lock-free versions: one lock around a sequential structure.  Template on
// the lock type so the benches can compare TTAS vs ticket vs MCS directly.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace txc::sync {

template <typename Lock>
class LockedStack {
 public:
  explicit LockedStack(std::size_t capacity) { slots_.reserve(capacity); }

  bool push(std::uint64_t value) {
    const std::lock_guard<Lock> guard{lock_};
    if (slots_.size() == slots_.capacity()) return false;
    slots_.push_back(value);
    return true;
  }

  std::optional<std::uint64_t> pop() {
    const std::lock_guard<Lock> guard{lock_};
    if (slots_.empty()) return std::nullopt;
    const std::uint64_t value = slots_.back();
    slots_.pop_back();
    return value;
  }

  [[nodiscard]] std::size_t size() {
    const std::lock_guard<Lock> guard{lock_};
    return slots_.size();
  }

 private:
  Lock lock_;
  std::vector<std::uint64_t> slots_;
};

template <typename Lock>
class LockedQueue {
 public:
  explicit LockedQueue(std::size_t capacity) : slots_(capacity) {}

  bool enqueue(std::uint64_t value) {
    const std::lock_guard<Lock> guard{lock_};
    if (tail_ - head_ >= slots_.size()) return false;
    slots_[tail_ % slots_.size()] = value;
    ++tail_;
    return true;
  }

  std::optional<std::uint64_t> dequeue() {
    const std::lock_guard<Lock> guard{lock_};
    if (head_ == tail_) return std::nullopt;
    const std::uint64_t value = slots_[head_ % slots_.size()];
    ++head_;
    return value;
  }

  [[nodiscard]] std::size_t size() {
    const std::lock_guard<Lock> guard{lock_};
    return tail_ - head_;
  }

 private:
  Lock lock_;
  std::vector<std::uint64_t> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace txc::sync
