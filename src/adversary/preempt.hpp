// txconflict — the scheduler adversary.
//
// The paper's grace-period argument is about *who eats the stall* when a
// lock holder stops running: a preempted committer holds commit-time state
// (TL2 write locks, NOrec's odd seqlock) that every conflicting waiter
// spins on, and the arbitration policy decides whether waiters sit out the
// stall, sacrifice themselves, or kill the holder and recover.  Under a
// cooperative scheduler those windows are nanoseconds wide and the policies
// are indistinguishable; this module makes them *seconds* wide on demand so
// the tail (p99/p999) separates them.  Three mechanisms, composable:
//
//   * Hook-targeted stalls: the victim thread itself dwells off-CPU
//     (nanosleep) inside a conflict::HookPoint window — deterministic
//     preemption at the protocol's most vulnerable instruction.  This is
//     what makes "deschedule the committer mid-commit" reproducible.
//   * Signal storms: a driver thread pulses SIGUSR1 at registered victim
//     threads; the (async-signal-safe) handler dwells before returning.
//     This emulates involuntary preemption at *arbitrary* points — SIGSTOP
//     semantics per thread, which Linux cannot deliver directly (SIGSTOP
//     stops the whole process, handlers can't catch it; see
//     docs/REPRODUCING.md).
//   * Yield churn: optional threads that spin sched_yield() to keep the
//     run queue hot, so every dwell above actually costs a scheduling
//     round-trip on an oversubscribed cpuset.
//
// The cpuset helpers (online_cpus / ScopedCpuset) create the
// oversubscription itself: restrict the spawning thread to k CPUs, start
// N >> k workers (they inherit the mask), restore.  Everything degrades
// gracefully off Linux — cpuset calls clamp to no-ops and the signal storm
// disables — so the module compiles everywhere even though the adversary
// only bites on Linux.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "conflict/arbiter.hpp"
#include "conflict/injection.hpp"

namespace txc::adversary {

/// CPUs the calling thread may currently run on (its affinity mask on
/// Linux; hardware_concurrency elsewhere).  Never returns 0.
[[nodiscard]] std::size_t online_cpus() noexcept;

/// Restrict the calling thread to the first `cpus` CPUs of its current
/// affinity mask, restoring the original mask on destruction.  Child
/// threads spawned while the restriction is live inherit the restricted
/// mask — that inheritance is how a whole worker pool lands on a small
/// cpuset without each worker pinning itself.  Requests are clamped to the
/// available mask (a 1-CPU machine yields effective() == 1 whatever was
/// asked); on non-Linux platforms the restriction is a no-op and
/// effective() just reports the clamp.
class ScopedCpuset {
 public:
  explicit ScopedCpuset(std::size_t cpus) noexcept;
  ~ScopedCpuset();
  ScopedCpuset(const ScopedCpuset&) = delete;
  ScopedCpuset& operator=(const ScopedCpuset&) = delete;

  /// The CPU count actually applied after clamping.
  [[nodiscard]] std::size_t effective() const noexcept { return effective_; }

 private:
  std::size_t effective_ = 1;
  bool restricted_ = false;
  // Opaque saved affinity mask (cpu_set_t without leaking <sched.h> into
  // every includer); large enough for 1024-CPU masks.
  alignas(8) unsigned char saved_mask_[128] = {};
};

/// What the adversary injects and how hard.  Probabilities are per hook
/// *call*, so kSpinWait (fired every arbitration round) wants a far lower
/// probability than the one-per-commit windows.
struct AdversaryConfig {
  /// Per-HookPoint probability that on_hook() dwells (indexed by
  /// conflict::HookPoint).  Defaults target committers hard and waiters
  /// lightly.
  double stall_probability[conflict::kHookPointCount] = {0.0005, 0.02, 0.02};
  /// Dwell length for a hook-targeted stall, microseconds.
  std::uint32_t stall_us = 300;
  /// Signal storm: period between SIGUSR1 pulses (0 disables the storm).
  std::uint32_t signal_pulse_us = 400;
  /// Dwell inside the signal handler, microseconds.
  std::uint32_t signal_stall_us = 200;
  /// Extra sched_yield() churn threads (0 disables).
  std::size_t yield_storm_threads = 0;
  std::uint64_t seed = 0x5EEDD1CEULL;
};

/// Injection counters, all relaxed (read exactly after stop() for totals,
/// live for a harmless approximation).
struct AdversaryStats {
  std::atomic<std::uint64_t> hook_calls[conflict::kHookPointCount] = {};
  std::atomic<std::uint64_t> hook_stalls{0};    // targeted dwells delivered
  std::atomic<std::uint64_t> signals_sent{0};   // pthread_kill pulses issued
  std::atomic<std::uint64_t> signal_stalls{0};  // handler dwells delivered
  std::atomic<std::uint64_t> yields{0};         // churn-thread yields
};

/// The preemption adversary: a conflict::InjectionHook plus the signal /
/// churn machinery around it.  Lifecycle: construct, have every victim
/// thread hold a ScopedVictim for its working lifetime, start(), run the
/// workload, stop().  start() installs the process-wide hook (hooks do not
/// stack — the previous hook must be null) and spawns the storm threads;
/// stop() uninstalls with full quiescence (no on_hook call is in flight
/// once it returns), restores the SIGUSR1 disposition, and joins the
/// storms.  Both are idempotent.  Call stop() only after every victim
/// thread has been joined — a pulse still in flight at the disposition
/// restore would otherwise be delivered under the restored handler
/// (SIG_DFL terminates the process on SIGUSR1).
class PreemptionAdversary final : public conflict::InjectionHook {
 public:
  explicit PreemptionAdversary(AdversaryConfig config = {});
  ~PreemptionAdversary() override;

  PreemptionAdversary(const PreemptionAdversary&) = delete;
  PreemptionAdversary& operator=(const PreemptionAdversary&) = delete;

  /// Registers the calling thread as a signal-storm target for the scope's
  /// lifetime.  Unregistration is the victim's last adversary-visible act:
  /// the registry mutex is held across every pthread_kill, so a pulse never
  /// targets a thread that already unwound (no ESRCH roulette).
  class ScopedVictim {
   public:
    explicit ScopedVictim(PreemptionAdversary& adversary) noexcept;
    ~ScopedVictim();
    ScopedVictim(const ScopedVictim&) = delete;
    ScopedVictim& operator=(const ScopedVictim&) = delete;

   private:
    PreemptionAdversary& adversary_;
  };

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const AdversaryStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AdversaryConfig& config() const noexcept {
    return config_;
  }

  /// conflict::InjectionHook — runs on the victim thread inside the
  /// protocol window; dwells with the configured per-point probability.
  void on_hook(conflict::HookPoint point) noexcept override;

 private:
  void register_victim() noexcept;
  void unregister_victim() noexcept;
  void storm_driver();
  void yield_churn();

  AdversaryConfig config_;
  AdversaryStats stats_;
  std::atomic<bool> running_{false};
  std::mutex victims_mutex_;
  std::vector<std::thread::native_handle_type> victims_;
  std::thread driver_;
  std::vector<std::thread> churn_;
  bool signal_installed_ = false;
};

/// Forwarding ConflictArbiter decorator that counts what the wrapped
/// arbiter decides — the harness's source for kills-requested and
/// grace-grants-expired without touching any arbiter implementation.  A
/// feedback outcome with committed == false is precisely "the granted wait
/// expired without the enemy finishing" (kills suppress their feedback at
/// the spin sites, so expiries and kills never double-count).
class ArbiterProbe final : public conflict::ConflictArbiter {
 public:
  explicit ArbiterProbe(std::shared_ptr<const conflict::ConflictArbiter> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] conflict::Decision decide(const conflict::ConflictView& view,
                                          sim::Rng& rng) const override {
    const conflict::Decision verdict = inner_->decide(view, rng);
    switch (verdict) {
      case conflict::Decision::kAbortEnemy:
        kills_requested_.fetch_add(1, std::memory_order_relaxed);
        break;
      case conflict::Decision::kAbortSelf:
        self_sacrifices_.fetch_add(1, std::memory_order_relaxed);
        break;
      case conflict::Decision::kWait:
        break;
    }
    return verdict;
  }
  [[nodiscard]] std::uint64_t wait_quantum(
      const conflict::ConflictView& view) const noexcept override {
    return inner_->wait_quantum(view);
  }
  [[nodiscard]] conflict::GraceGrant grace_grant(
      const conflict::ConflictView& view, sim::Rng& rng) const override {
    return inner_->grace_grant(view, rng);
  }
  [[nodiscard]] bool needs_seniority() const noexcept override {
    return inner_->needs_seniority();
  }
  void feedback(const core::ConflictOutcome& outcome) const noexcept override {
    if (!outcome.committed) {
      grants_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    inner_->feedback(outcome);
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] std::uint64_t kills_requested() const noexcept {
    return kills_requested_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t self_sacrifices() const noexcept {
    return self_sacrifices_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t grants_expired() const noexcept {
    return grants_expired_.load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const conflict::ConflictArbiter> inner_;
  mutable std::atomic<std::uint64_t> kills_requested_{0};
  mutable std::atomic<std::uint64_t> self_sacrifices_{0};
  mutable std::atomic<std::uint64_t> grants_expired_{0};
};

}  // namespace txc::adversary
