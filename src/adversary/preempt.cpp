#include "adversary/preempt.hpp"

#include <cassert>
#include <chrono>
#include <cstring>
#include <functional>

#include "sim/rng.hpp"

#if defined(__linux__)
#include <cerrno>
#include <csignal>
#include <ctime>
#include <pthread.h>
#include <sched.h>
#endif

namespace txc::adversary {

namespace {

#if defined(__linux__)

// Signal-handler state must be reachable from a plain C handler, so it lives
// in file-scope lock-free atomics (both are async-signal-safe to touch).
std::atomic<long> g_signal_stall_ns{0};
std::atomic<std::uint64_t> g_signal_stalls{0};
// Pre-start SIGUSR1 disposition, restored at stop().  File-scope is safe:
// hooks do not stack, so at most one adversary owns the signal at a time.
struct sigaction g_saved_sigusr1;

extern "C" void txc_adversary_sigusr1(int /*signo*/) {
  // Async-signal-safe dwell: errno save/restore around nanosleep (the only
  // syscall), no allocation, no locks.  The dwell emulates the thread being
  // descheduled at whatever instruction the pulse landed on.
  const int saved_errno = errno;
  g_signal_stalls.fetch_add(1, std::memory_order_relaxed);
  const long ns = g_signal_stall_ns.load(std::memory_order_relaxed);
  if (ns > 0) {
    timespec dwell{};
    dwell.tv_sec = ns / 1000000000L;
    dwell.tv_nsec = ns % 1000000000L;
    nanosleep(&dwell, nullptr);
  }
  errno = saved_errno;
}

void dwell_ns(long ns) noexcept {
  timespec dwell{};
  dwell.tv_sec = ns / 1000000000L;
  dwell.tv_nsec = ns % 1000000000L;
  nanosleep(&dwell, nullptr);  // EINTR (a storm pulse landed) ends the dwell
}

#else

void dwell_ns(long ns) noexcept {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

#endif  // __linux__

/// Per-thread deterministic RNG for injection draws, decorrelated across
/// threads the same way the substrates seed their spin RNGs.
sim::Rng& injection_rng(std::uint64_t seed) noexcept {
  thread_local sim::Rng rng{seed ^
                            std::hash<std::thread::id>{}(
                                std::this_thread::get_id())};
  return rng;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cpuset helpers
// ---------------------------------------------------------------------------

std::size_t online_cpus() noexcept {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (pthread_getaffinity_np(pthread_self(), sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return static_cast<std::size_t>(count);
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ScopedCpuset::ScopedCpuset(std::size_t cpus) noexcept {
  const std::size_t available = online_cpus();
  effective_ = cpus == 0 ? 1 : (cpus < available ? cpus : available);
#if defined(__linux__)
  static_assert(sizeof(cpu_set_t) <= sizeof(saved_mask_),
                "saved_mask_ too small for this platform's cpu_set_t");
  cpu_set_t current;
  CPU_ZERO(&current);
  if (pthread_getaffinity_np(pthread_self(), sizeof(current), &current) != 0) {
    return;  // unreadable affinity: leave unrestricted
  }
  std::memcpy(saved_mask_, &current, sizeof(current));
  // Keep the first effective_ CPUs of the *current* mask (respecting any
  // outer cgroup/taskset restriction), drop the rest.
  cpu_set_t restricted;
  CPU_ZERO(&restricted);
  std::size_t kept = 0;
  for (int cpu = 0; cpu < CPU_SETSIZE && kept < effective_; ++cpu) {
    if (CPU_ISSET(cpu, &current)) {
      CPU_SET(cpu, &restricted);
      ++kept;
    }
  }
  if (kept > 0 &&
      pthread_setaffinity_np(pthread_self(), sizeof(restricted), &restricted) ==
          0) {
    restricted_ = true;
    effective_ = kept;
  }
#endif
}

ScopedCpuset::~ScopedCpuset() {
#if defined(__linux__)
  if (restricted_) {
    cpu_set_t saved;
    std::memcpy(&saved, saved_mask_, sizeof(saved));
    pthread_setaffinity_np(pthread_self(), sizeof(saved), &saved);
  }
#endif
}

// ---------------------------------------------------------------------------
// PreemptionAdversary
// ---------------------------------------------------------------------------

PreemptionAdversary::PreemptionAdversary(AdversaryConfig config)
    : config_(config) {}

PreemptionAdversary::~PreemptionAdversary() { stop(); }

PreemptionAdversary::ScopedVictim::ScopedVictim(
    PreemptionAdversary& adversary) noexcept
    : adversary_(adversary) {
  adversary_.register_victim();
}

PreemptionAdversary::ScopedVictim::~ScopedVictim() {
  adversary_.unregister_victim();
}

void PreemptionAdversary::register_victim() noexcept {
#if defined(__linux__)
  std::lock_guard<std::mutex> lock(victims_mutex_);
  victims_.push_back(pthread_self());
#endif
}

void PreemptionAdversary::unregister_victim() noexcept {
#if defined(__linux__)
  // Must be the victim's last adversary-visible act: once erased under the
  // mutex, no storm pulse can target this thread again (the driver holds
  // the same mutex across pthread_kill).
  const pthread_t self = pthread_self();
  std::lock_guard<std::mutex> lock(victims_mutex_);
  for (std::size_t index = 0; index < victims_.size(); ++index) {
    if (pthread_equal(victims_[index], self)) {
      victims_[index] = victims_.back();
      victims_.pop_back();
      return;
    }
  }
#endif
}

void PreemptionAdversary::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
#if defined(__linux__)
  if (config_.signal_pulse_us > 0 && config_.signal_stall_us > 0) {
    // Handler counters are process-global (hooks do not stack, so at most
    // one adversary owns them at a time): zero them so stats_ reports this
    // run, not the process lifetime.
    g_signal_stalls.store(0, std::memory_order_relaxed);
    g_signal_stall_ns.store(
        static_cast<long>(config_.signal_stall_us) * 1000L,
        std::memory_order_relaxed);
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = txc_adversary_sigusr1;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    signal_installed_ = sigaction(SIGUSR1, &action, &g_saved_sigusr1) == 0;
    if (signal_installed_) {
      driver_ = std::thread([this] { storm_driver(); });
    }
  }
#endif
  for (std::size_t index = 0; index < config_.yield_storm_threads; ++index) {
    churn_.emplace_back([this] { yield_churn(); });
  }
  [[maybe_unused]] conflict::InjectionHook* const previous =
      conflict::exchange_injection_hook(this);
  assert(previous == nullptr && "injection hooks do not stack");
}

void PreemptionAdversary::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Quiesce the hook first: after this no thread is inside on_hook(), so
  // tearing down the rest of the machinery (and eventually this object) is
  // safe.
  conflict::uninstall_injection_hook();
  if (driver_.joinable()) driver_.join();
  for (std::thread& churn : churn_) {
    if (churn.joinable()) churn.join();
  }
  churn_.clear();
#if defined(__linux__)
  if (signal_installed_) {
    // Restore the pre-start disposition.  Callers must stop() only after
    // joining every ScopedVictim thread: a pulse issued before the driver
    // joined could otherwise be delivered *after* this restore, under
    // whatever disposition we put back (SIG_DFL terminates on SIGUSR1).
    // With victims joined, every issued pulse was already handled or
    // discarded with its target thread.
    sigaction(SIGUSR1, &g_saved_sigusr1, nullptr);
    signal_installed_ = false;
  }
  stats_.signal_stalls.store(g_signal_stalls.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
#endif
}

void PreemptionAdversary::on_hook(conflict::HookPoint point) noexcept {
  const auto index = static_cast<std::size_t>(point);
  stats_.hook_calls[index].fetch_add(1, std::memory_order_relaxed);
  const double probability = config_.stall_probability[index];
  if (probability <= 0.0) return;
  sim::Rng& rng = injection_rng(config_.seed);
  if (!rng.bernoulli(probability)) return;
  stats_.hook_stalls.fetch_add(1, std::memory_order_relaxed);
  dwell_ns(static_cast<long>(config_.stall_us) * 1000L);
}

void PreemptionAdversary::storm_driver() {
#if defined(__linux__)
  sim::Rng rng{config_.seed ^ 0x570F2ULL};
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(config_.signal_pulse_us));
    std::lock_guard<std::mutex> lock(victims_mutex_);
    if (victims_.empty()) continue;
    const std::size_t target = rng.uniform_below(victims_.size());
    if (pthread_kill(victims_[target], SIGUSR1) == 0) {
      stats_.signals_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
#endif
}

void PreemptionAdversary::yield_churn() {
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
    stats_.yields.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace txc::adversary
