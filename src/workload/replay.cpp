#include "workload/replay.hpp"

namespace txc::workload {

ReplayResult replay_trace(const core::GracePeriodPolicy& policy,
                          const std::vector<ConflictSample>& trace,
                          std::uint64_t seed, int draws_per_conflict) {
  sim::Rng rng{seed};
  ReplayResult result;
  result.conflicts = trace.size();
  for (const ConflictSample& sample : trace) {
    core::ConflictContext context;
    context.abort_cost = sample.abort_cost;
    context.chain_length = sample.chain_length;
    // Per-conflict flavor: HybridPolicy switches on the chain length.
    const core::ResolutionMode mode = policy.mode_for(context);
    double sum = 0.0;
    for (int draw = 0; draw < draws_per_conflict; ++draw) {
      const double grace = policy.grace_period(context, rng);
      sum += core::conflict_cost(mode, grace, sample.remaining,
                                 sample.chain_length, sample.abort_cost);
    }
    result.total_cost += sum / draws_per_conflict;
    result.total_optimal += core::offline_optimal_cost(
        mode, sample.remaining, sample.chain_length, sample.abort_cost);
  }
  return result;
}

double offline_optimal_total(core::ResolutionMode mode,
                             const std::vector<ConflictSample>& trace) {
  double total = 0.0;
  for (const ConflictSample& sample : trace) {
    total += core::offline_optimal_cost(mode, sample.remaining,
                                        sample.chain_length,
                                        sample.abort_cost);
  }
  return total;
}

}  // namespace txc::workload
