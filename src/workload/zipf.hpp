// txconflict — Zipfian item selection.
//
// The paper's transactional application picks its 2-of-64 objects uniformly;
// real transactional workloads (TPC-C rows, key-value caches) are skewed, and
// skew concentrates conflicts on a few hot items — exactly the regime where
// the grace-period decision matters most.  This sampler provides the standard
// Zipf(s) distribution over {0, .., n-1}: P(i) ∝ 1/(i+1)^s, drawn by binary
// search over the precomputed CDF (exact, O(log n) per draw, deterministic
// under the repository's Rng).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"

namespace txc::workload {

class ZipfSampler {
 public:
  /// `n` items, exponent `s >= 0`.  s = 0 degenerates to uniform; s = 1 is
  /// the classic Zipf; larger s concentrates mass on item 0.
  ZipfSampler(std::uint32_t n, double s);

  /// Draw one item index in [0, n).
  [[nodiscard]] std::uint32_t sample(sim::Rng& rng) const noexcept;

  /// Probability of item i (tests).
  [[nodiscard]] double probability(std::uint32_t i) const noexcept;

  [[nodiscard]] std::uint32_t items() const noexcept {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  [[nodiscard]] double exponent() const noexcept { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // inclusive prefix sums, cdf_.back() == 1
};

}  // namespace txc::workload
