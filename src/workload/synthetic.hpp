// txconflict — the Figure 2 synthetic conflict experiment.
//
// Section 8.1 protocol, per trial:
//   1. draw the transaction length r from a length distribution;
//   2. pick the interrupt point i uniformly at random in [0, r); the
//      remaining time is D = r - i (the ski-rental "number of days");
//   3. the strategy picks the grace period x;
//   4. charge the Section 4 conflict cost; OPT pays the foresight cost.
//
// Figure 2a uses B = 2000, mu = 500 (high fixed cost); Figure 2b uses
// B = 200, mu = 500; Figure 2c feeds every strategy the worst-case remaining
// -time distribution for DET (remaining time pinned at DET's abort point).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "sim/stats.hpp"
#include "workload/distributions.hpp"

namespace txc::workload {

struct SyntheticConfig {
  double abort_cost = 2000.0;  // B
  double mean = 500.0;         // mu of the length distribution
  int chain_length = 2;        // k (Figure 2 uses 2)
  std::size_t trials = 200000;
  std::uint64_t seed = 42;
  /// Pass the true distribution mean as the policy's hint (the profiler
  /// abstraction of Section 5.2).
  bool provide_mean_hint = true;
};

struct SyntheticResult {
  sim::RunningStats strategy_cost;  // conflict cost per trial
  sim::RunningStats optimal_cost;   // foresight cost per trial
  double abort_fraction = 0.0;      // fraction of trials the policy aborted

  [[nodiscard]] double average_ratio() const noexcept {
    return optimal_cost.sum() > 0.0 ? strategy_cost.sum() / optimal_cost.sum()
                                    : 0.0;
  }
};

/// Run the Figure 2a/2b protocol for one (strategy, distribution) cell.
[[nodiscard]] SyntheticResult run_synthetic(const core::GracePeriodPolicy& policy,
                                            const LengthDistribution& lengths,
                                            const SyntheticConfig& config);

/// Figure 2c: remaining time is adversarially pinned to DET's abort point
/// B/(k-1) (the adversary "chooses D = x" from Theorem 4's proof), instead of
/// being derived from a drawn length.
[[nodiscard]] SyntheticResult run_synthetic_det_worst_case(
    const core::GracePeriodPolicy& policy, const SyntheticConfig& config);

}  // namespace txc::workload
