#include "workload/synthetic.hpp"

#include "core/cost_model.hpp"

namespace txc::workload {

namespace {

SyntheticResult run_with_remaining(
    const core::GracePeriodPolicy& policy, const SyntheticConfig& config,
    const std::function<double(sim::Rng&)>& draw_remaining) {
  sim::Rng rng{config.seed};
  SyntheticResult result;
  std::size_t aborts = 0;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const double remaining = draw_remaining(rng);
    core::ConflictContext context;
    context.abort_cost = config.abort_cost;
    context.chain_length = config.chain_length;
    if (config.provide_mean_hint) context.mean_hint = config.mean;
    const double grace = policy.grace_period(context, rng);
    const double cost = core::conflict_cost(policy.mode(), grace, remaining,
                                            config.chain_length,
                                            config.abort_cost);
    const double optimal = core::offline_optimal_cost(
        policy.mode(), remaining, config.chain_length, config.abort_cost);
    result.strategy_cost.add(cost);
    result.optimal_cost.add(optimal);
    if (remaining >= grace) ++aborts;
  }
  result.abort_fraction =
      static_cast<double>(aborts) / static_cast<double>(config.trials);
  return result;
}

}  // namespace

SyntheticResult run_synthetic(const core::GracePeriodPolicy& policy,
                              const LengthDistribution& lengths,
                              const SyntheticConfig& config) {
  return run_with_remaining(policy, config, [&lengths](sim::Rng& rng) {
    const double length = lengths.sample(rng);
    const double interrupt = rng.uniform(0.0, length);
    return length - interrupt;
  });
}

SyntheticResult run_synthetic_det_worst_case(
    const core::GracePeriodPolicy& policy, const SyntheticConfig& config) {
  // Theorem 4's adversary: the deterministic strategy waits exactly
  // B/(k-1); the worst reply sets the remaining time to that point, so DET
  // pays k x + B while OPT pays min((k-1) x, B) = B.
  const double pinned =
      config.abort_cost / (static_cast<double>(config.chain_length) - 1.0);
  return run_with_remaining(policy, config,
                            [pinned](sim::Rng&) { return pinned; });
}

}  // namespace txc::workload
