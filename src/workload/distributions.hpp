// txconflict — transaction-length distributions used by the evaluation.
//
// Section 8.1: "The following length distributions were used in the
// experiment: Geometric, Normal, Uniform, Exponential and Poisson."  All are
// parameterized by their mean mu so the Figure 2 sweeps can hold mu fixed
// while changing the shape.  Two extra shapes support the HTM benchmarks:
// kFixed (stable data-structure transactions) and kBimodal (the Figure 3
// bimodal transactional application alternates short and very long
// transactions).
#pragma once

#include <string>

#include "sim/rng.hpp"

namespace txc::workload {

enum class LengthShape {
  kGeometric,
  kNormal,
  kUniform,
  kExponential,
  kPoisson,
  kFixed,
  kBimodal,
};

[[nodiscard]] const char* to_string(LengthShape shape) noexcept;

/// Samples strictly positive transaction lengths with the requested mean.
class LengthDistribution {
 public:
  /// For kNormal, sigma = mean * normal_cv (coefficient of variation, default
  /// 1/4; the paper does not state sigma).  For kBimodal, the short mode is
  /// mean * bimodal_short_fraction and the long mode balances the mean at a
  /// 50/50 mix.
  explicit LengthDistribution(LengthShape shape, double mean,
                              double normal_cv = 0.25,
                              double bimodal_short_fraction = 0.1) noexcept;

  [[nodiscard]] double sample(sim::Rng& rng) const noexcept;

  [[nodiscard]] LengthShape shape() const noexcept { return shape_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] std::string name() const { return to_string(shape_); }

 private:
  LengthShape shape_;
  double mean_;
  double sigma_;
  double short_mode_;
  double long_mode_;
};

}  // namespace txc::workload
