#include "workload/adversary.hpp"

#include <algorithm>
#include <cmath>

#include "core/cost_model.hpp"
#include "sim/stats.hpp"

namespace txc::workload {

std::vector<AdversarialTransaction> plan_adversary(const GameConfig& config) {
  sim::Rng rng{config.seed};
  const LengthDistribution lengths{config.length_shape, config.mean_length};
  std::vector<AdversarialTransaction> schedule;
  schedule.reserve(config.transactions);
  for (std::size_t i = 0; i < config.transactions; ++i) {
    AdversarialTransaction tx;
    tx.commit_cost = lengths.sample(rng);
    for (std::size_t c = 0; c < config.max_conflicts; ++c) {
      if (!rng.bernoulli(config.conflict_probability)) break;
      ConflictPoint point;
      point.elapsed_at_conflict = rng.uniform(0.0, tx.commit_cost);
      point.chain_length = static_cast<int>(
          rng.uniform_int(config.min_chain, config.max_chain));
      tx.conflicts.push_back(point);
    }
    // Within an attempt conflicts must strike in increasing elapsed order
    // (assumption (b): no second receiver-side conflict during a grace
    // period, so strikes are sequential).
    std::sort(tx.conflicts.begin(), tx.conflicts.end(),
              [](const ConflictPoint& a, const ConflictPoint& b) {
                return a.elapsed_at_conflict < b.elapsed_at_conflict;
              });
    schedule.push_back(std::move(tx));
  }
  return schedule;
}

namespace {

/// Decides the grace period for one conflict.  The online player consults the
/// policy; the offline player sees the remaining time.
class Player {
 public:
  virtual ~Player() = default;
  virtual double decide(const core::ConflictContext& context, double remaining,
                        sim::Rng& rng) const = 0;
  /// Per-conflict flavor (HybridPolicy switches on the chain length).
  [[nodiscard]] virtual core::ResolutionMode mode(
      const core::ConflictContext& context) const = 0;
};

class OnlinePlayer final : public Player {
 public:
  explicit OnlinePlayer(const core::GracePeriodPolicy& policy)
      : policy_(policy) {}
  double decide(const core::ConflictContext& context, double /*remaining*/,
                sim::Rng& rng) const override {
    return policy_.grace_period(context, rng);
  }
  [[nodiscard]] core::ResolutionMode mode(
      const core::ConflictContext& context) const override {
    return policy_.mode_for(context);
  }

 private:
  const core::GracePeriodPolicy& policy_;
};

class OfflinePlayer final : public Player {
 public:
  explicit OfflinePlayer(core::ResolutionMode mode) : mode_(mode) {}
  double decide(const core::ConflictContext& context, double remaining,
                sim::Rng&) const override {
    const double k = context.chain_length;
    const double wait_cost = (k - 1.0) * remaining;
    const double abort_cost = mode(context) == core::ResolutionMode::kRequestorWins
                                  ? context.abort_cost
                                  : (k - 1.0) * context.abort_cost;
    // Wait long enough to commit iff that beats aborting immediately.  The
    // tiny excess implements the strict-commit boundary of Section 4.2.
    return wait_cost < abort_cost ? remaining * (1.0 + 1e-12) + 1e-9 : 0.0;
  }
  [[nodiscard]] core::ResolutionMode mode(
      const core::ConflictContext&) const override {
    return mode_;
  }

 private:
  core::ResolutionMode mode_;
};

GameResult play(const std::vector<AdversarialTransaction>& schedule,
                const Player& player, const GameConfig& config) {
  // The proof of Corollary 1 requires that "the same conflict C must arise
  // for the optimal decision algorithm as well": the adversary's conflict
  // set — each conflict's remaining time, chain length and abort cost — is
  // fixed by the schedule and replayed identically against every player.
  // Each conflict's cost is amortized to its receiver per the proof; only
  // the per-conflict decision differs between players.
  sim::Rng rng{config.seed ^ 0xDECAFBADULL};
  GameResult result;
  for (const AdversarialTransaction& tx : schedule) {
    result.sum_commit_cost += tx.commit_cost;
    std::uint32_t aborts_of_tx = 0;
    for (const ConflictPoint& point : tx.conflicts) {
      const double remaining = tx.commit_cost - point.elapsed_at_conflict;
      core::ConflictContext context;
      context.abort_cost =
          config.cleanup_cost +
          (config.elapsed_in_abort_cost ? point.elapsed_at_conflict : 0.0);
      context.chain_length = point.chain_length;
      context.attempt = aborts_of_tx;
      if (config.provide_mean_hint) context.mean_hint = config.mean_length;
      const double grace = player.decide(context, remaining, rng);
      result.sum_conflict_cost +=
          core::conflict_cost(player.mode(context), grace, remaining,
                              point.chain_length, context.abort_cost);
      ++result.conflicts;
      if (remaining >= grace) {
        ++result.aborts;
        ++aborts_of_tx;
      }
    }
  }
  return result;
}

}  // namespace

GameResult play_game(const std::vector<AdversarialTransaction>& schedule,
                     const core::GracePeriodPolicy& policy,
                     const GameConfig& config) {
  return play(schedule, OnlinePlayer{policy}, config);
}

GameResult play_offline_optimum(
    const std::vector<AdversarialTransaction>& schedule,
    core::ResolutionMode mode, const GameConfig& config) {
  return play(schedule, OfflinePlayer{mode}, config);
}

double corollary1_bound(const GameResult& offline) noexcept {
  if (offline.sum_commit_cost <= 0.0) return 2.0;
  const double waste = offline.sum_conflict_cost / offline.sum_commit_cost;
  return (2.0 * waste + 1.0) / (waste + 1.0);
}

ProgressResult run_progress_experiment(const ProgressConfig& config) {
  sim::Rng rng{config.seed};
  ProgressResult result;
  sim::Samples attempts;
  attempts.reserve(config.trials);
  const double k = config.chain_length;
  std::size_t within_budget = 0;
  result.corollary_budget =
      std::log2(config.run_time) +
      std::log2(static_cast<double>(config.conflicts_per_attempt)) +
      std::log2(k) - std::log2(config.initial_abort_cost) + 2.0;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    std::uint32_t aborts = 0;
    bool committed = false;
    while (!committed) {
      const double scaled_cost =
          config.initial_abort_cost * std::pow(config.growth, aborts);
      bool survived = true;
      for (std::size_t c = 0; c < config.conflicts_per_attempt; ++c) {
        const double elapsed = rng.uniform(0.0, config.run_time);
        const double remaining = config.run_time - elapsed;
        // Uniform requestor-wins strategy (the corollary's analysis).
        const double grace = rng.uniform(0.0, scaled_cost / (k - 1.0));
        if (remaining >= grace) {
          survived = false;
          break;
        }
      }
      if (survived) {
        committed = true;
      } else {
        ++aborts;
        // Bail out of pathological trials to keep the harness bounded; they
        // count as out-of-budget.
        if (aborts > 64) break;
      }
    }
    const double attempt_count = static_cast<double>(aborts) + 1.0;
    attempts.add(attempt_count);
    if (committed && attempt_count <= result.corollary_budget) ++within_budget;
  }
  result.attempts_mean = attempts.mean();
  result.attempts_p95 = attempts.quantile(0.95);
  result.within_budget_fraction =
      static_cast<double>(within_budget) / static_cast<double>(config.trials);
  return result;
}

}  // namespace txc::workload
