#include "workload/distributions.hpp"

#include <algorithm>
#include <cassert>

namespace txc::workload {

const char* to_string(LengthShape shape) noexcept {
  switch (shape) {
    case LengthShape::kGeometric: return "geometric";
    case LengthShape::kNormal: return "normal";
    case LengthShape::kUniform: return "uniform";
    case LengthShape::kExponential: return "exponential";
    case LengthShape::kPoisson: return "poisson";
    case LengthShape::kFixed: return "fixed";
    case LengthShape::kBimodal: return "bimodal";
  }
  return "?";
}

LengthDistribution::LengthDistribution(LengthShape shape, double mean,
                                       double normal_cv,
                                       double bimodal_short_fraction) noexcept
    : shape_(shape),
      mean_(mean),
      sigma_(mean * normal_cv),
      short_mode_(mean * bimodal_short_fraction),
      long_mode_(2.0 * mean - mean * bimodal_short_fraction) {
  assert(mean > 0.0);
}

double LengthDistribution::sample(sim::Rng& rng) const noexcept {
  double value = 1.0;
  switch (shape_) {
    case LengthShape::kGeometric:
      value = static_cast<double>(rng.geometric(1.0 / mean_));
      break;
    case LengthShape::kNormal:
      value = rng.normal(mean_, sigma_);
      break;
    case LengthShape::kUniform:
      value = rng.uniform(0.0, 2.0 * mean_);
      break;
    case LengthShape::kExponential:
      value = rng.exponential(mean_);
      break;
    case LengthShape::kPoisson:
      value = static_cast<double>(rng.poisson(mean_));
      break;
    case LengthShape::kFixed:
      value = mean_;
      break;
    case LengthShape::kBimodal:
      value = rng.bernoulli(0.5) ? short_mode_ : long_mode_;
      break;
  }
  return std::max(1.0, value);
}

}  // namespace txc::workload
