// txconflict — the Section 6 adversarial conflict game and the Section 7
// progress harness.
//
// Conflict model (Section 3.2 with the simplifying assumptions (a)-(c)): n
// threads execute sequences of transactions; an adversary interrupts a
// transaction at chosen elapsed-time points, forming conflict chains of
// chosen length.  The adversary's schedule is fixed up front (a deterministic
// function of the seed), so the online algorithm and the offline optimum face
// the *same* conflicts, as required by the competitive analysis.
//
// Accounting follows the proof of Corollary 1: each conflict's cost is
// amortized to its receiver transaction; the sum of running times is
// sum_T rho_T + sum_C Cost(C).  The offline optimum decides each conflict
// with foresight (wait D iff that beats aborting), yielding the waste
// w(S) = sum_T alpha_T / sum_T rho_T and the bound
//   sum Gamma(T, A) / sum Gamma(T, OPT) <= (2 w + 1) / (w + 1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"
#include "workload/distributions.hpp"

namespace txc::workload {

/// One adversarial interruption of a transaction: at elapsed time
/// `elapsed_at_conflict` of the current attempt, a chain of `chain_length`
/// transactions clashes with it.
struct ConflictPoint {
  double elapsed_at_conflict = 0.0;
  int chain_length = 2;
};

/// A transaction plus the adversary's planned interruptions, replayed
/// identically against every algorithm.  Conflict points are interpreted
/// per-attempt: if the receiver aborts and restarts, the adversary strikes
/// again at the next planned point (capped by `max_conflicts`).
struct AdversarialTransaction {
  double commit_cost = 0.0;  // rho_T: isolated run time to commit
  std::vector<ConflictPoint> conflicts;
};

struct GameConfig {
  std::size_t transactions = 2000;
  LengthShape length_shape = LengthShape::kExponential;
  double mean_length = 100.0;
  /// Probability that the adversary interrupts a given attempt at all; the
  /// interrupt point is uniform over the attempt.
  double conflict_probability = 0.7;
  /// Maximum planned interruptions per transaction (assumption (b) bounds
  /// concurrent conflicts; this bounds the adversary's budget).
  std::size_t max_conflicts = 16;
  int min_chain = 2;
  int max_chain = 2;
  double cleanup_cost = 50.0;  // fixed part of the abort cost B
  /// B = elapsed running time + cleanup (Section 4, footnote 1).
  bool elapsed_in_abort_cost = true;
  std::uint64_t seed = 7;
  bool provide_mean_hint = false;
};

struct GameResult {
  double sum_commit_cost = 0.0;    // sum_T rho_T
  double sum_conflict_cost = 0.0;  // sum_C Cost(C, A)
  std::size_t conflicts = 0;
  std::size_t aborts = 0;

  [[nodiscard]] double sum_running_time() const noexcept {
    return sum_commit_cost + sum_conflict_cost;
  }
};

/// Draw the adversary's schedule for the whole game (same for every
/// algorithm evaluated with the same config).
[[nodiscard]] std::vector<AdversarialTransaction> plan_adversary(
    const GameConfig& config);

/// Replay the schedule against an online policy.
[[nodiscard]] GameResult play_game(
    const std::vector<AdversarialTransaction>& schedule,
    const core::GracePeriodPolicy& policy, const GameConfig& config);

/// Replay the schedule with perfect foresight (the offline optimum of
/// Corollary 1: at each conflict wait the remaining time iff that costs less
/// than aborting).
[[nodiscard]] GameResult play_offline_optimum(
    const std::vector<AdversarialTransaction>& schedule,
    core::ResolutionMode mode, const GameConfig& config);

/// Corollary 1's bound (2w+1)/(w+1) computed from an offline result.
[[nodiscard]] double corollary1_bound(const GameResult& offline) noexcept;

// ---------------------------------------------------------------------------
// Section 7: probabilistic progress under multiplicative backoff
// ---------------------------------------------------------------------------

struct ProgressConfig {
  double run_time = 200.0;        // y: the transaction's isolated run time
  std::size_t conflicts_per_attempt = 4;  // gamma
  int chain_length = 2;           // k
  double initial_abort_cost = 16.0;  // B
  double growth = 2.0;            // backoff multiplier
  std::size_t trials = 4000;
  std::uint64_t seed = 11;
};

struct ProgressResult {
  double attempts_mean = 0.0;
  double attempts_p95 = 0.0;
  /// Corollary 2's attempt budget: log2 y + log2 gamma + log2 k - log2 B + 2.
  double corollary_budget = 0.0;
  /// Fraction of trials that committed within the budget (Corollary 2
  /// guarantees >= 1/2).
  double within_budget_fraction = 0.0;
};

/// Monte-Carlo check of Corollary 2: a transaction suffering `gamma` uniform
/// conflicts per attempt, resolved by the uniform requestor-wins strategy
/// with doubling abort cost, commits within the corollary's attempt budget
/// with probability at least 1/2.
[[nodiscard]] ProgressResult run_progress_experiment(const ProgressConfig& config);

}  // namespace txc::workload
