// txconflict — offline replay of recorded conflict traces.
//
// A simulator run under any one policy produces a sequence of grace-decision
// points (B, k, D).  Replay evaluates *every* policy on that same recorded
// sequence using the Section-4 cost model — an apples-to-apples comparison
// impossible online (each policy would steer the system into different
// conflicts), and the tightest empirical check of the competitive claims:
// the offline optimum OPT = min((k-1)D, B) is computable exactly per record,
// so each policy's regret against perfect information is a single division.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "core/policy.hpp"
#include "sim/rng.hpp"

namespace txc::workload {

/// One recorded decision point (mirrors htm::ConflictRecord without the
/// dependency, so traces from any source can be replayed).
struct ConflictSample {
  double abort_cost = 0.0;  // B
  int chain_length = 2;     // k
  double remaining = 0.0;   // D
};

struct ReplayResult {
  double total_cost = 0.0;     // summed expected conflict cost
  double total_optimal = 0.0;  // summed offline OPT
  std::size_t conflicts = 0;

  [[nodiscard]] double mean_cost() const noexcept {
    return conflicts == 0 ? 0.0
                          : total_cost / static_cast<double>(conflicts);
  }
  [[nodiscard]] double ratio_vs_optimal() const noexcept {
    return total_optimal == 0.0 ? 0.0 : total_cost / total_optimal;
  }
};

/// Expected cost of `policy` on the trace: each record is replayed
/// `draws_per_conflict` times (randomized policies need the average) and
/// costed with core::conflict_cost under the policy's own resolution mode
/// (or `mode_override` if provided).
[[nodiscard]] ReplayResult replay_trace(
    const core::GracePeriodPolicy& policy,
    const std::vector<ConflictSample>& trace, std::uint64_t seed = 1,
    int draws_per_conflict = 32);

/// The perfect-information cost of the trace (denominator of the ratio).
[[nodiscard]] double offline_optimal_total(
    core::ResolutionMode mode, const std::vector<ConflictSample>& trace);

}  // namespace txc::workload
