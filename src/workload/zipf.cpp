#include "workload/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace txc::workload {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : s_(s) {
  assert(n >= 1);
  assert(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& value : cdf_) value /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::uint32_t ZipfSampler::sample(sim::Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint32_t i) const noexcept {
  if (i >= cdf_.size()) return 0.0;
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace txc::workload
